"""Tests for the metrics registry: counters, gauges, histograms,
clock binding, and trace-import restore."""

import pytest

from repro.obs import MetricsRegistry, percentile


class FakeClock:
    def __init__(self):
        self.now = 0

    def __call__(self):
        return self.now


def test_counter_cumulative_series():
    clock = FakeClock()
    reg = MetricsRegistry(clock=clock)
    counter = reg.counter("tdx.hypercalls")
    counter.inc()
    clock.now = 10
    counter.inc(4)
    assert counter.value == 5
    assert counter.series == [(0, 1), (10, 5)]
    counter.inc(0)  # zero deltas are not sampled
    assert len(counter.series) == 2


def test_gauge_set_and_max():
    clock = FakeClock()
    reg = MetricsRegistry(clock=clock)
    gauge = reg.gauge("launch.queue_depth")
    gauge.set(3)
    clock.now = 5
    gauge.set(1)
    assert gauge.value == 1
    assert gauge.max() == 3
    assert gauge.series == [(0, 3), (5, 1)]


def test_histogram_stats():
    reg = MetricsRegistry()
    hist = reg.histogram("memcpy.bytes")
    for v in (10, 20, 30):
        hist.observe(v)
    assert hist.count == 3
    assert hist.sum == 60
    assert hist.mean() == 20.0
    assert reg.histograms() == [hist]


def test_create_or_get_and_kind_mismatch():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    with pytest.raises(ValueError, match="is a counter"):
        reg.gauge("a")
    assert "a" in reg
    assert len(reg) == 1


def test_disabled_registry_is_a_noop():
    reg = MetricsRegistry(enabled=False)
    reg.counter("c").inc()
    reg.gauge("g").set(9)
    reg.histogram("h").observe(1)
    assert reg.counter("c").value == 0
    assert reg.gauge("g").value == 0
    assert reg.histogram("h").count == 0


def test_unbound_clock_samples_at_zero():
    reg = MetricsRegistry()
    reg.counter("c").inc()
    assert reg.counter("c").series == [(0, 1)]


def test_sampled_sorted_by_name():
    reg = MetricsRegistry()
    reg.gauge("z").set(1)
    reg.counter("a").inc()
    reg.histogram("m").observe(1)  # not a sampled track
    assert [m.name for m in reg.sampled()] == ["a", "z"]
    assert reg.names() == ["a", "m", "z"]


def test_percentile_nearest_rank():
    values = [50, 10, 40, 20, 30]  # unsorted on purpose
    assert percentile(values, 0) == 10
    assert percentile(values, 50) == 30
    assert percentile(values, 99) == 50
    assert percentile(values, 100) == 50
    assert percentile([7.5], 95) == 7.5
    assert percentile([], 50) == 0.0


def test_histogram_percentile_and_summary():
    reg = MetricsRegistry()
    hist = reg.histogram("ttft_ms")
    for v in range(1, 101):  # 1..100
        hist.observe(float(v))
    assert hist.percentile(50) == 51.0
    assert hist.percentile(95) == 96.0
    assert hist.percentile(99) == 100.0
    summary = hist.summary()
    assert summary["count"] == 100
    assert summary["min"] == 1.0
    assert summary["max"] == 100.0
    assert summary["mean"] == 50.5
    assert summary["p50"] == 51.0
    assert summary["p99"] == 100.0


def test_histogram_summary_empty_is_zeros():
    reg = MetricsRegistry()
    summary = reg.histogram("empty").summary()
    assert summary == {"count": 0, "mean": 0.0, "min": 0.0,
                       "max": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}


def test_import_series_and_histogram_restore():
    reg = MetricsRegistry()
    reg.import_series("bounce.used_bytes", "gauge", [(0, 64), (9, 0)])
    reg.import_histogram("lat", [1.5, 2.5])
    assert reg.gauge("bounce.used_bytes").series == [(0, 64), (9, 0)]
    assert reg.histogram("lat").values == [1.5, 2.5]


def test_percentile_single_and_all_equal_samples():
    # single sample: every percentile is that sample
    for pct in (0, 1, 50, 99, 100):
        assert percentile([3.25], pct) == 3.25
    # all-equal samples: percentiles collapse to the common value
    for pct in (0, 50, 95, 99, 100):
        assert percentile([7.0] * 9, pct) == 7.0


def test_percentile_rejects_nan_samples():
    with pytest.raises(ValueError, match="NaN"):
        percentile([1.0, float("nan"), 3.0], 50)


def test_histogram_rejects_nan_observation():
    reg = MetricsRegistry()
    hist = reg.histogram("lat")
    with pytest.raises(ValueError, match="NaN"):
        hist.observe(float("nan"))
    # the rejected observation must not have been recorded
    assert hist.values == []


def test_histogram_summary_single_sample():
    reg = MetricsRegistry()
    hist = reg.histogram("one")
    hist.observe(42.0)
    assert hist.summary() == {
        "count": 1, "mean": 42.0, "min": 42.0, "max": 42.0,
        "p50": 42.0, "p95": 42.0, "p99": 42.0,
    }


def test_histogram_summary_all_equal_samples():
    reg = MetricsRegistry()
    hist = reg.histogram("flat")
    for _ in range(5):
        hist.observe(2.5)
    summary = hist.summary()
    assert summary["count"] == 5
    assert summary["mean"] == 2.5
    assert summary["min"] == summary["max"] == 2.5
    assert summary["p50"] == summary["p95"] == summary["p99"] == 2.5
