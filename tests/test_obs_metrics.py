"""Tests for the metrics registry: counters, gauges, histograms,
clock binding, and trace-import restore."""

import pytest

from repro.obs import MetricsRegistry


class FakeClock:
    def __init__(self):
        self.now = 0

    def __call__(self):
        return self.now


def test_counter_cumulative_series():
    clock = FakeClock()
    reg = MetricsRegistry(clock=clock)
    counter = reg.counter("tdx.hypercalls")
    counter.inc()
    clock.now = 10
    counter.inc(4)
    assert counter.value == 5
    assert counter.series == [(0, 1), (10, 5)]
    counter.inc(0)  # zero deltas are not sampled
    assert len(counter.series) == 2


def test_gauge_set_and_max():
    clock = FakeClock()
    reg = MetricsRegistry(clock=clock)
    gauge = reg.gauge("launch.queue_depth")
    gauge.set(3)
    clock.now = 5
    gauge.set(1)
    assert gauge.value == 1
    assert gauge.max() == 3
    assert gauge.series == [(0, 3), (5, 1)]


def test_histogram_stats():
    reg = MetricsRegistry()
    hist = reg.histogram("memcpy.bytes")
    for v in (10, 20, 30):
        hist.observe(v)
    assert hist.count == 3
    assert hist.sum == 60
    assert hist.mean() == 20.0
    assert reg.histograms() == [hist]


def test_create_or_get_and_kind_mismatch():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    with pytest.raises(ValueError, match="is a counter"):
        reg.gauge("a")
    assert "a" in reg
    assert len(reg) == 1


def test_disabled_registry_is_a_noop():
    reg = MetricsRegistry(enabled=False)
    reg.counter("c").inc()
    reg.gauge("g").set(9)
    reg.histogram("h").observe(1)
    assert reg.counter("c").value == 0
    assert reg.gauge("g").value == 0
    assert reg.histogram("h").count == 0


def test_unbound_clock_samples_at_zero():
    reg = MetricsRegistry()
    reg.counter("c").inc()
    assert reg.counter("c").series == [(0, 1)]


def test_sampled_sorted_by_name():
    reg = MetricsRegistry()
    reg.gauge("z").set(1)
    reg.counter("a").inc()
    reg.histogram("m").observe(1)  # not a sampled track
    assert [m.name for m in reg.sampled()] == ["a", "z"]
    assert reg.names() == ["a", "m", "z"]


def test_import_series_and_histogram_restore():
    reg = MetricsRegistry()
    reg.import_series("bounce.used_bytes", "gauge", [(0, 64), (9, 0)])
    reg.import_histogram("lat", [1.5, 2.5])
    assert reg.gauge("bounce.used_bytes").series == [(0, 64), (9, 0)]
    assert reg.histogram("lat").values == [1.5, 2.5]
