"""Tests for the app catalogue and microbenchmarks."""

import pytest

from repro import units
from repro.config import CopyKind, SystemConfig
from repro.cuda import run_app
from repro.workloads import (
    CATALOG,
    FIG5_APPS,
    FIG7_APPS,
    FIG9_APPS,
    FIG10_APPS,
    bandwidth_sweep,
    fusion_sweep,
    launch_sequence,
    overlap_experiment,
)
from repro.workloads.apps import get, names


def test_catalog_listing():
    assert "sc" in names()
    assert names("polybench") == sorted(
        n for n, info in CATALOG.items() if info.suite == "polybench"
    )
    with pytest.raises(KeyError):
        get("nonexistent")


def test_figure_subsets_are_known_apps():
    for subset in (FIG5_APPS, FIG7_APPS, FIG9_APPS, list(FIG10_APPS.values())):
        for name in subset:
            assert name in CATALOG


def test_paper_launch_counts():
    """Launch counts the paper states explicitly (Sec. VI-B)."""
    expectations = {"sc": 1611, "3dconv": 254, "dwt2d": 10}
    for name, expected in expectations.items():
        trace, _ = run_app(CATALOG[name].app(False), SystemConfig.base())
        assert len(trace.launches()) == expected, name


def test_every_app_runs_in_both_modes():
    for name, info in CATALOG.items():
        for config in (SystemConfig.base(), SystemConfig.confidential()):
            trace, _ = run_app(info.app(False), config, label=name)
            assert len(trace.kernels()) > 0, name
            assert trace.span_ns() > 0, name


def test_uvm_variants_fault():
    for name in ("2dconv", "gramschm"):
        trace, _ = run_app(CATALOG[name].app(True), SystemConfig.base())
        assert any(k.attrs["uvm"] for k in trace.kernels()), name
        assert any(k.attrs["faulted_pages"] > 0 for k in trace.kernels()), name


def test_uvm_variant_has_no_explicit_copies():
    trace, _ = run_app(CATALOG["2mm"].app(True), SystemConfig.base())
    assert len(trace.memcpys()) == 0


def test_apps_leave_no_leaks():
    from repro.cuda import Machine

    machine = Machine(SystemConfig.confidential())
    machine.run(CATALOG["2mm"].app(False))
    assert machine.gpu.hbm.used_bytes == 0
    assert machine.guest.memory.heap.used_bytes == 0


# --- microbenchmarks --------------------------------------------------------


def test_bandwidth_sweep_shape():
    points = bandwidth_sweep(sizes=[4096, units.MiB, 64 * units.MiB])
    # 2 modes x 2 memory kinds x 2 directions x 3 sizes
    assert len(points) == 24
    big = {
        (p.memory.value, p.cc): p.gbps
        for p in points
        if p.size_bytes == 64 * units.MiB and p.copy_kind is CopyKind.H2D
    }
    assert big[("pinned", False)] > 20
    assert big[("pageable", False)] > 10
    assert big[("pinned", True)] < 4
    assert abs(big[("pinned", True)] - big[("pageable", True)]) < 0.5


def test_launch_sequence_first_launches_spike():
    klos = launch_sequence(SystemConfig.base(), launches_per_kernel=20, ket_ns=units.us(100))
    assert len(klos) == 40
    # Launch 0 (K0 first) and launch 20 (K1 first) spike.
    steady = sorted(klos)[: len(klos) // 2]
    steady_mean = sum(steady) / len(steady)
    assert klos[0] > 5 * steady_mean
    assert klos[20] > 5 * steady_mean


def test_fusion_sweep_monotone_total_klo():
    points = fusion_sweep(SystemConfig.base(), launch_counts=(1, 8, 64), total_ket_ns=units.ms(10))
    total_klos = [p.total_klo_ns for p in points]
    # More launches -> more total launch overhead.
    assert total_klos[0] < total_klos[-1]
    # Mean KLO highest for the single fused launch (first-launch cost).
    assert points[0].mean_klo_ns > points[-1].mean_klo_ns


def test_overlap_speedup_with_streams():
    point = overlap_experiment(
        SystemConfig.base(),
        num_streams=8,
        total_bytes=64 * units.MiB,
        ket_ns=units.ms(5),
    )
    assert point.overlap_speedup > 1.5


def test_overlap_worse_under_cc():
    kwargs = dict(num_streams=8, total_bytes=256 * units.MiB, ket_ns=units.ms(1))
    base = overlap_experiment(SystemConfig.base(), **kwargs)
    cc = overlap_experiment(SystemConfig.confidential(), **kwargs)
    assert cc.overlap_speedup < base.overlap_speedup


def test_overlap_improves_with_longer_kernels_under_cc():
    short = overlap_experiment(
        SystemConfig.confidential(),
        num_streams=8,
        total_bytes=128 * units.MiB,
        ket_ns=units.ms(1),
    )
    long = overlap_experiment(
        SystemConfig.confidential(),
        num_streams=8,
        total_bytes=128 * units.MiB,
        ket_ns=units.ms(100),
    )
    assert long.overlap_speedup > short.overlap_speedup
