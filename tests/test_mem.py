"""Tests for the memory substrate: extent allocator, host memory with
TD page states, and the bounce-buffer pool."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.mem import (
    AllocatorError,
    BounceBufferPool,
    ExtentAllocator,
    HostMemory,
    OutOfMemoryError,
    PageState,
)


# --- ExtentAllocator -----------------------------------------------------


def test_alloc_free_roundtrip():
    alloc = ExtentAllocator(1 << 20)
    a = alloc.alloc(1000)
    assert alloc.used_bytes == 1024  # rounded to alignment
    assert alloc.free(a) == 1024
    assert alloc.used_bytes == 0


def test_alloc_respects_alignment():
    alloc = ExtentAllocator(1 << 20, alignment=4096)
    a = alloc.alloc(1)
    b = alloc.alloc(1)
    assert a % 4096 == 0
    assert b % 4096 == 0
    assert b >= a + 4096


def test_out_of_memory():
    alloc = ExtentAllocator(4096)
    alloc.alloc(4096)
    with pytest.raises(OutOfMemoryError):
        alloc.alloc(1)


def test_free_coalesces():
    alloc = ExtentAllocator(3 * 256, alignment=256)
    addrs = [alloc.alloc(256) for _ in range(3)]
    for addr in addrs:
        alloc.free(addr)
    # After coalescing, a full-size allocation must succeed again.
    big = alloc.alloc(3 * 256)
    assert alloc.used_bytes == 3 * 256
    alloc.free(big)


def test_double_free_rejected():
    alloc = ExtentAllocator(1 << 16)
    a = alloc.alloc(512)
    alloc.free(a)
    with pytest.raises(AllocatorError):
        alloc.free(a)


def test_invalid_parameters_rejected():
    with pytest.raises(AllocatorError):
        ExtentAllocator(0)
    with pytest.raises(AllocatorError):
        ExtentAllocator(100, alignment=3)
    alloc = ExtentAllocator(1 << 16)
    with pytest.raises(AllocatorError):
        alloc.alloc(0)


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("alloc"), st.integers(1, 5000)),
            st.tuples(st.just("free"), st.integers(0, 30)),
        ),
        max_size=60,
    )
)
def test_property_allocator_invariants(ops):
    alloc = ExtentAllocator(256 * 1024, alignment=256)
    live = []
    for op, value in ops:
        if op == "alloc":
            try:
                live.append(alloc.alloc(value))
            except OutOfMemoryError:
                pass
        elif live:
            alloc.free(live.pop(value % len(live)))
        alloc.check_invariants()
    for addr in live:
        alloc.free(addr)
    alloc.check_invariants()
    assert alloc.used_bytes == 0


# --- HostMemory ------------------------------------------------------------


def test_td_pages_default_private():
    mem = HostMemory(64 * units.MiB, td=True)
    addr = mem.alloc(8192)
    assert mem.page_state(addr) is PageState.PRIVATE
    assert not mem.is_dma_capable(addr, 8192)


def test_vm_pages_default_shared():
    mem = HostMemory(64 * units.MiB, td=False)
    addr = mem.alloc(8192)
    assert mem.page_state(addr) is PageState.SHARED
    assert mem.is_dma_capable(addr, 8192)


def test_set_memory_decrypted_converts_pages():
    mem = HostMemory(64 * units.MiB, td=True)
    addr = mem.alloc(16384)
    converted = mem.set_memory_decrypted(addr, 16384)
    assert converted == 4
    assert mem.is_dma_capable(addr, 16384)
    # Idempotent.
    assert mem.set_memory_decrypted(addr, 16384) == 0


def test_set_memory_encrypted_round_trip():
    mem = HostMemory(64 * units.MiB, td=True)
    addr = mem.alloc(4096)
    mem.set_memory_decrypted(addr, 4096)
    assert mem.set_memory_encrypted(addr, 4096) == 1
    assert not mem.is_dma_capable(addr, 4096)


def test_conversion_noop_in_regular_vm():
    mem = HostMemory(64 * units.MiB, td=False)
    addr = mem.alloc(4096)
    assert mem.set_memory_decrypted(addr, 4096) == 0


def test_contents_read_write():
    mem = HostMemory(64 * units.MiB, td=True)
    addr = mem.alloc(4096)
    mem.write(addr, b"hello")
    assert mem.read(addr) == b"hello"
    assert mem.read(addr, 2) == b"he"


def test_free_clears_state():
    mem = HostMemory(64 * units.MiB, td=True)
    addr = mem.alloc(4096)
    mem.set_memory_decrypted(addr, 4096)
    mem.write(addr, b"x")
    mem.free(addr)
    addr2 = mem.alloc(4096)
    assert addr2 == addr  # first-fit reuses the extent
    assert mem.page_state(addr2) is PageState.PRIVATE
    assert mem.read(addr2) == b""


# --- BounceBufferPool -------------------------------------------------------


def test_bounce_stage_and_peek():
    pool = BounceBufferPool(1 * units.MiB)
    slot = pool.alloc(4096)
    pool.stage(slot, b"ciphertext-bytes")
    assert pool.peek(slot) == b"ciphertext-bytes"
    pool.free(slot)
    assert pool.peek(slot) == b""


def test_bounce_stage_requires_allocation():
    pool = BounceBufferPool(1 * units.MiB)
    with pytest.raises(AllocatorError):
        pool.stage(0xB0000000, b"data")


def test_bounce_stage_rejects_oversize():
    pool = BounceBufferPool(1 * units.MiB)
    slot = pool.alloc(4096)
    with pytest.raises(AllocatorError):
        pool.stage(slot, b"x" * 8192)


def test_bounce_peak_usage_tracking():
    pool = BounceBufferPool(1 * units.MiB)
    a = pool.alloc(256 * 1024)
    b = pool.alloc(256 * 1024)
    pool.free(a)
    assert pool.peak_usage == 512 * 1024
    assert pool.used_bytes == 256 * 1024
    assert pool.total_allocs == 2
    pool.free(b)
