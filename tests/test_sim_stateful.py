"""Hypothesis stateful tests for the simulation kernel's shared
resources: under any interleaving of operations, Resource and Store
bookkeeping must stay conserved and FIFO-fair."""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.sim import Resource, Simulator, Store


class ResourceMachine(RuleBasedStateMachine):
    """Drives a Resource with acquire/hold/release processes."""

    @initialize(capacity=st.integers(min_value=1, max_value=4))
    def setup(self, capacity):
        self.sim = Simulator()
        self.capacity = capacity
        self.resource = Resource(self.sim, capacity=capacity)
        self.grant_order = []
        self.request_order = []
        self.next_id = 0

    @rule(hold=st.integers(min_value=1, max_value=20))
    def spawn_user(self, hold):
        user_id = self.next_id
        self.next_id += 1
        self.request_order.append(user_id)

        def user():
            request = self.resource.request()
            yield request
            self.grant_order.append(user_id)
            yield self.sim.timeout(hold)
            self.resource.release(request)

        self.sim.process(user())

    @rule(steps=st.integers(min_value=1, max_value=10))
    def advance(self, steps):
        for _ in range(steps):
            if self.sim.peek() is None:
                break
            self.sim.step()

    @invariant()
    def capacity_respected(self):
        assert 0 <= self.resource.in_use <= self.capacity

    @invariant()
    def grants_are_fifo(self):
        # Grants happen in request order (FIFO queue discipline).
        assert self.grant_order == self.request_order[: len(self.grant_order)]

    def teardown(self):
        self.sim.run()
        assert self.resource.in_use == 0
        assert self.resource.queue_length == 0
        assert self.grant_order == self.request_order


class StoreMachine(RuleBasedStateMachine):
    """Drives a bounded Store with producers and consumers."""

    @initialize(capacity=st.integers(min_value=1, max_value=3))
    def setup(self, capacity):
        self.sim = Simulator()
        self.store = Store(self.sim, capacity=capacity)
        self.capacity = capacity
        self.put_seq = 0
        self.produced = []
        self.consumed = []

    @rule()
    def produce(self):
        item = self.put_seq
        self.put_seq += 1
        self.produced.append(item)

        def producer():
            yield self.store.put(item)

        self.sim.process(producer())

    @rule()
    def consume(self):
        def consumer():
            value = yield self.store.get()
            self.consumed.append(value)

        self.sim.process(consumer())

    @rule(steps=st.integers(min_value=1, max_value=8))
    def advance(self, steps):
        for _ in range(steps):
            if self.sim.peek() is None:
                break
            self.sim.step()

    @invariant()
    def bounded(self):
        assert len(self.store) <= self.capacity

    @invariant()
    def fifo_order(self):
        # Items come out in the order they were produced.
        assert self.consumed == self.produced[: len(self.consumed)]

    def teardown(self):
        self.sim.run()
        matched = min(len(self.produced), self.put_seq)
        # Everything that could pair up did, in order.
        assert self.consumed == self.produced[: len(self.consumed)]
        assert matched >= len(self.consumed)


TestResourceStateful = ResourceMachine.TestCase
TestResourceStateful.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
TestStoreStateful = StoreMachine.TestCase
TestStoreStateful.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
