"""Tests for the calibrated crypto throughput model (paper Fig. 4b)."""

import pytest

from repro import units
from repro.crypto import throughput


def test_paper_anchor_aes_gcm_emr():
    # Paper: AES-GCM peak on EMR is 3.36 GB/s.
    spec = throughput.spec("aes-128-gcm", throughput.EMR)
    assert spec.peak_gbps == pytest.approx(3.36)


def test_paper_anchor_ghash_emr():
    # Paper: GHASH reaches up to 8.9 GB/s "at the cost of confidentiality".
    spec = throughput.spec("ghash", throughput.EMR)
    assert spec.peak_gbps == pytest.approx(8.9)
    assert not spec.confidentiality
    assert spec.integrity


def test_ordering_matches_paper_shape():
    # GHASH > CTR > GCM on both CPUs; GCM-128 > GCM-256.
    for cpu in throughput.cpus():
        ghash = throughput.spec("ghash", cpu).peak_gbps
        ctr = throughput.spec("aes-128-ctr", cpu).peak_gbps
        gcm128 = throughput.spec("aes-128-gcm", cpu).peak_gbps
        gcm256 = throughput.spec("aes-256-gcm", cpu).peak_gbps
        assert ghash > ctr > gcm128 > gcm256


def test_effective_throughput_grows_with_size():
    small = throughput.effective_throughput(64, "aes-128-gcm")
    large = throughput.effective_throughput(units.MiB, "aes-128-gcm")
    assert large > small
    assert large <= 3.36


def test_effective_throughput_approaches_peak():
    at_1g = throughput.effective_throughput(units.GiB, "aes-128-gcm")
    assert at_1g == pytest.approx(3.36, rel=0.01)


def test_crypt_time_zero_bytes():
    assert throughput.crypt_time_ns(0, "aes-128-gcm") == 0


def test_crypt_time_rejects_negative():
    with pytest.raises(ValueError):
        throughput.crypt_time_ns(-1, "aes-128-gcm")


def test_unknown_algorithm_and_cpu_rejected():
    with pytest.raises(KeyError):
        throughput.spec("rot13")
    with pytest.raises(KeyError):
        throughput.spec("aes-128-gcm", "z80")


def test_cpu_and_algorithm_listing():
    assert throughput.EMR in throughput.cpus()
    assert throughput.GRACE in throughput.cpus()
    assert "aes-128-gcm" in throughput.algorithms()
