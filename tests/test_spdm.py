"""Tests for the SPDM attestation/session-establishment model."""

import pytest

from repro.config import SystemConfig
from repro.crypto.sha256 import sha256
from repro.sim import Simulator
from repro.tdx import GuestContext, SpdmError, attest_gpu
from repro.tdx.spdm import SpdmMessage, SpdmResponder


def _run_attest(config, **kwargs):
    sim = Simulator()
    guest = GuestContext(sim, config)
    process = sim.process(attest_gpu(sim, guest, config, **kwargs))
    session = sim.run(until=process)
    return session, sim, guest


def test_session_establishes_and_keys_agree():
    session, _sim, _guest = _run_attest(SystemConfig.confidential())
    assert len(session.session_key) == 16
    assert session.messages == 7
    assert len(session.transcript_hash) == 32


def test_session_deterministic():
    a, _, _ = _run_attest(SystemConfig.confidential())
    b, _, _ = _run_attest(SystemConfig.confidential())
    assert a.session_key == b.session_key
    assert a.transcript_hash == b.transcript_hash


def test_attestation_slower_inside_td():
    base, base_sim, _ = _run_attest(SystemConfig.base())
    cc, cc_sim, _ = _run_attest(SystemConfig.confidential())
    assert cc.elapsed_ns > base.elapsed_ns
    # Seven hypercall-mediated doorbells account for the gap.
    assert cc.elapsed_ns - base.elapsed_ns > 6 * (
        SystemConfig.confidential().hypercall_ns()
        - SystemConfig.base().hypercall_ns()
    )


def test_wrong_measurement_rejected():
    with pytest.raises(SpdmError, match="measurement"):
        _run_attest(
            SystemConfig.confidential(),
            measurement=sha256(b"tampered-firmware"),
            expected_measurement=sha256(b"h100-cc-fw"),
        )


def test_wrong_device_secret_rejected():
    """A device without the provisioned secret fails the challenge."""
    sim = Simulator()
    config = SystemConfig.confidential()
    guest = GuestContext(sim, config)
    from repro.tdx.spdm import SpdmRequester

    measurement = sha256(b"h100-cc-fw")
    impostor = SpdmResponder(b"wrong-secret", measurement)
    requester = SpdmRequester(
        sim, guest, config, measurement, b"h100-provisioned-secret"
    )
    process = sim.process(requester.establish(impostor))
    with pytest.raises(SpdmError, match="challenge proof"):
        sim.run(until=process)


def test_responder_rejects_unknown_code():
    responder = SpdmResponder(b"secret", sha256(b"fw"))
    with pytest.raises(SpdmError):
        responder.handle(SpdmMessage(0x7F, b""))


def test_session_key_differs_per_device_secret():
    a, _, _ = _run_attest(
        SystemConfig.confidential(), device_secret=b"device-a"
    )
    b, _, _ = _run_attest(
        SystemConfig.confidential(), device_secret=b"device-b"
    )
    assert a.session_key != b.session_key
