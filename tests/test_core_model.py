"""Tests for the Sec.-V performance model and Fig.-1 breakdown."""


from repro import units
from repro.config import SystemConfig
from repro.core import breakdown, decompose, kernel_to_launch_ratio
from repro.core.metrics import copy_time_by_kind, launch_metrics, mgmt_time_by_api
from repro.config import CopyKind
from repro.cuda import run_app
from repro.gpu import nanosleep_kernel


def sequential_app(rt):
    """Copy-then-execute with sync between launches (no overlap)."""
    dev = yield from rt.malloc(16 * units.MiB)
    host = yield from rt.host_alloc(16 * units.MiB)
    yield from rt.memcpy(dev, host)
    kernel = nanosleep_kernel(units.us(200), name="work")
    for _ in range(8):
        yield from rt.launch(kernel)
        yield from rt.synchronize()
    yield from rt.memcpy(host, dev)
    yield from rt.free(dev)
    yield from rt.free(host)


def overlap_app(rt):
    """Streams: copies overlapped with long kernels."""
    streams = [rt.create_stream() for _ in range(4)]
    dev = yield from rt.malloc(64 * units.MiB)
    host = yield from rt.malloc_host(64 * units.MiB)
    kernel = nanosleep_kernel(units.ms(5), name="long")
    for stream in streams:
        yield from rt.launch(kernel, stream=stream)
    copy_stream = rt.create_stream()
    yield from rt.memcpy_async(dev, host, stream=copy_stream)
    yield from rt.synchronize()


def test_model_prediction_close_to_observed():
    trace, _ = run_app(sequential_app, SystemConfig.base())
    model = decompose(trace)
    assert abs(model.prediction_error) < 0.05


def test_model_prediction_close_under_cc():
    trace, _ = run_app(sequential_app, SystemConfig.confidential())
    model = decompose(trace)
    assert abs(model.prediction_error) < 0.05


def test_alpha_zero_without_streams():
    trace, _ = run_app(sequential_app, SystemConfig.base())
    model = decompose(trace)
    assert model.alpha < 0.05


def test_alpha_positive_with_streams():
    trace, _ = run_app(overlap_app, SystemConfig.base())
    model = decompose(trace)
    assert model.alpha > 0.5


def test_part_totals_are_nonnegative():
    trace, _ = run_app(sequential_app, SystemConfig.base())
    model = decompose(trace)
    assert model.part_a_ns >= 0
    assert model.part_b_ns >= 0
    assert model.part_c_ns >= 0
    assert model.t_other_ns >= 0
    assert 0.0 <= model.alpha <= 1.0
    assert all(0.0 <= b <= 1.0 for b in model.betas)


def test_summary_renders():
    trace, _ = run_app(sequential_app, SystemConfig.base())
    text = decompose(trace).summary()
    assert "predicted" in text
    assert "alpha" in text


def test_klr_finite_and_positive():
    trace, _ = run_app(sequential_app, SystemConfig.base())
    klr = kernel_to_launch_ratio(trace)
    assert klr > 0


def test_launch_metrics_counts():
    trace, _ = run_app(sequential_app, SystemConfig.base())
    metrics = launch_metrics(trace)
    assert metrics.count == 8
    assert metrics.total_klo_ns > 0


def test_copy_time_by_kind_base():
    trace, _ = run_app(sequential_app, SystemConfig.base())
    by_kind = copy_time_by_kind(trace)
    assert by_kind[CopyKind.H2D] > 0
    assert by_kind[CopyKind.D2H] > 0
    assert by_kind[CopyKind.D2D] == 0


def test_cc_pinned_copies_reclassified_d2d():
    def pinned_copy(rt):
        dev = yield from rt.malloc(8 * units.MiB)
        host = yield from rt.malloc_host(8 * units.MiB)
        yield from rt.memcpy(dev, host)

    trace, _ = run_app(pinned_copy, SystemConfig.confidential())
    by_kind = copy_time_by_kind(trace)
    # The Nsight-visible view: the pinned copy shows up as Managed D2D.
    assert by_kind[CopyKind.D2D] > 0
    assert by_kind[CopyKind.H2D] == 0


def test_mgmt_time_by_api_names():
    trace, _ = run_app(sequential_app, SystemConfig.base())
    mgmt = mgmt_time_by_api(trace)
    assert "cudaMalloc" in mgmt
    assert "cudaFree" in mgmt


def test_breakdown_covers_span():
    trace, _ = run_app(sequential_app, SystemConfig.base())
    result = breakdown(trace)
    assert result.span_ns == trace.span_ns()
    assert sum(result.by_category_ns.values()) == result.span_ns
    assert all(v >= 0 for v in result.by_category_ns.values())


def test_breakdown_kernel_share_dominates_sequential_app():
    trace, _ = run_app(sequential_app, SystemConfig.base())
    result = breakdown(trace)
    assert result.share("kernel") > 0.2


def test_breakdown_empty_trace():
    from repro.profiler import Trace

    result = breakdown(Trace())
    assert result.span_ns == 0
    assert result.share("kernel") == 0.0
