"""Tests for UVM oversubscription / LRU eviction (DESIGN.md extension:
the thrash regime behind the paper's most extreme Fig. 9 datapoint)."""

import dataclasses


from repro import units
from repro.config import SystemConfig
from repro.gpu import UVMManager
from repro.sim import Simulator
from repro.tdx import GuestContext


def _manager(config):
    sim = Simulator()
    guest = GuestContext(sim, config)
    return sim, UVMManager(sim, config, guest)


def _with_budget(config, budget):
    return config.replace(
        uvm=dataclasses.replace(
            config.uvm, oversubscription_budget_bytes=budget
        )
    )


def run(sim, gen):
    return sim.run(until=sim.process(gen))


def test_default_budget_is_full_hbm():
    config = SystemConfig.base()
    _, uvm = _manager(config)
    assert uvm.budget_bytes == config.gpu.hbm_bytes


def test_no_eviction_within_budget():
    config = _with_budget(SystemConfig.base(), 16 * units.MiB)
    sim, uvm = _manager(config)
    a = uvm.register(4 * units.MiB)
    b = uvm.register(4 * units.MiB)
    run(sim, uvm.gpu_touch(a, 4 * units.MiB))
    run(sim, uvm.gpu_touch(b, 4 * units.MiB))
    assert uvm.total_evictions == 0
    assert uvm.resident_bytes == 8 * units.MiB


def test_eviction_triggers_beyond_budget():
    config = _with_budget(SystemConfig.base(), 6 * units.MiB)
    sim, uvm = _manager(config)
    a = uvm.register(4 * units.MiB)
    b = uvm.register(4 * units.MiB)
    run(sim, uvm.gpu_touch(a, 4 * units.MiB))
    run(sim, uvm.gpu_touch(b, 4 * units.MiB))
    assert uvm.total_evictions == 1
    assert uvm.total_evicted_bytes == 4 * units.MiB
    # Victim (a, least recently used) must re-fault.
    migrated, _ = run(sim, uvm.gpu_touch(a, 4 * units.MiB))
    assert migrated == 4 * units.MiB


def test_lru_order_picks_coldest_victim():
    config = _with_budget(SystemConfig.base(), 9 * units.MiB)
    sim, uvm = _manager(config)
    a = uvm.register(4 * units.MiB)
    b = uvm.register(4 * units.MiB)
    c = uvm.register(4 * units.MiB)
    run(sim, uvm.gpu_touch(a, 4 * units.MiB))
    run(sim, uvm.gpu_touch(b, 4 * units.MiB))
    run(sim, uvm.gpu_touch(a, 4 * units.MiB))  # refresh a
    run(sim, uvm.gpu_touch(c, 4 * units.MiB))  # must evict b, not a
    assert uvm.allocation(a).resident_chunks() > 0
    assert uvm.allocation(b).resident_chunks() == 0


def test_thrash_ping_pong():
    """Two working sets that cannot co-reside evict each other forever."""
    config = _with_budget(SystemConfig.base(), 5 * units.MiB)
    sim, uvm = _manager(config)
    a = uvm.register(4 * units.MiB)
    b = uvm.register(4 * units.MiB)
    for _ in range(5):
        run(sim, uvm.gpu_touch(a, 4 * units.MiB))
        run(sim, uvm.gpu_touch(b, 4 * units.MiB))
    assert uvm.total_evictions == 9  # every touch after the first pair
    assert uvm.total_migrated_bytes == 10 * 4 * units.MiB


def test_cc_thrash_is_catastrophic():
    """Oversubscribed encrypted paging: the paper's 1e5x regime."""
    budget = 5 * units.MiB

    def thrash_time(config):
        sim, uvm = _manager(_with_budget(config, budget))
        a = uvm.register(4 * units.MiB)
        b = uvm.register(4 * units.MiB)
        for _ in range(3):
            run(sim, uvm.gpu_touch(a, 4 * units.MiB))
            run(sim, uvm.gpu_touch(b, 4 * units.MiB))
        return sim.now

    base = thrash_time(SystemConfig.base())
    cc = thrash_time(SystemConfig.confidential())
    assert cc > 25 * base


def test_overshoot_allowed_when_single_allocation():
    """One allocation larger than the budget still migrates (the UVM
    driver oversubscribes rather than failing)."""
    config = _with_budget(SystemConfig.base(), 2 * units.MiB)
    sim, uvm = _manager(config)
    a = uvm.register(8 * units.MiB)
    migrated, _ = run(sim, uvm.gpu_touch(a, 8 * units.MiB))
    assert migrated == 8 * units.MiB
    assert uvm.total_evictions == 0
