"""Tests for trace summarize/diff: layer tables, Sec.-V model
components, breakdown agreement, and cross-run attribution."""

import json

import pytest

from repro import units
from repro.core.breakdown import CATEGORIES, breakdown
from repro.core.metrics import kernel_metrics, launch_metrics
from repro.core.model import decompose
from repro.cuda import run_base_and_cc
from repro.gpu import nanosleep_kernel
from repro.obs import summary


def _app(rt):
    dev = yield from rt.malloc(8 * units.MiB)
    host = yield from rt.host_alloc(8 * units.MiB)
    yield from rt.memcpy(dev, host)
    for _ in range(4):
        yield from rt.launch(nanosleep_kernel(units.us(50), name="k"))
    yield from rt.synchronize()
    yield from rt.memcpy(host, dev)
    yield from rt.free(dev)
    yield from rt.free(host)


@pytest.fixture(scope="module")
def traces():
    return run_base_and_cc(_app, label="obs")


def test_summarize_component_sums_match_breakdown(traces):
    _, cc_trace = traces
    text = summary.summarize(cc_trace)
    result = breakdown(cc_trace)
    # Every breakdown row appears verbatim (same ms, same share) —
    # summarize computes the table *with* core.breakdown, so sums
    # match it exactly rather than approximately.
    for category, value_ns, share in result.rows():
        line = next(
            l for l in text.splitlines() if l.strip().startswith(category)
        )
        assert f"{units.to_ms(value_ns):12.3f} ms" in line
        assert f"{share * 100:7.1f}%" in line
    total = sum(result.by_category_ns.get(c, 0) for c in CATEGORIES)
    assert f"{units.to_ms(total):12.3f} ms  100.0%" in text


def test_summarize_reports_layers_and_metrics(traces):
    _, cc_trace = traces
    text = summary.summarize(cc_trace)
    for token in ("per-layer time", "Sec. V model terms", "top "):
        assert token in text
    for layer in ("td", "tdx_module", "driver", "dma", "gpu.compute"):
        assert layer in text
    assert "tdx.hypercalls" in text


def test_model_components_match_model_sources(traces):
    base_trace, cc_trace = traces
    for trace in (base_trace, cc_trace):
        comps = summary.model_components(trace)
        deco = decompose(trace)
        launches = launch_metrics(trace)
        kernels = kernel_metrics(trace)
        assert comps["T"] == deco.t_mem_ns
        assert comps["L"] == launches.total_klo_ns
        assert comps["Q"] == launches.total_lqt_ns + kernels.total_kqt_ns
        assert comps["K"] == kernels.total_ket_ns
        assert comps["D"] == deco.t_other_ns
        assert comps["recovery"] == deco.t_recovery_ns


def test_crypto_time_only_under_cc(traces):
    base_trace, cc_trace = traces
    assert summary.crypto_ns(base_trace) == 0
    assert summary.crypto_ns(cc_trace) > 0


def test_layer_table_busy_never_exceeds_total(traces):
    _, cc_trace = traces
    rows = summary.layer_table(cc_trace)
    assert len(rows) >= 5
    for row in rows:
        assert 0 < row.busy_ns <= row.total_ns
        assert row.spans > 0


def test_diff_within_model_tolerance(traces):
    base_trace, cc_trace = traces
    result = summary.diff(base_trace, cc_trace, tolerance=0.01)
    # The Sec.-V model reproduces both observed spans within 1%, so the
    # per-component deltas are trustworthy attribution.
    assert result.flagged == []
    assert result.base_drift < 0.01 and result.cc_drift < 0.01
    assert result.overhead_ns > 0
    # CC adds encryption out of nothing and inflates memory time.
    assert result.component("E").base_ns == 0
    assert result.component("E").cc_ns > 0
    assert result.component("E").ratio == float("inf")
    assert result.component("T").delta_ns > 0
    text = summary.render_diff(result)
    assert "model terms within tolerance" in text
    assert "E: software encryption" in text


def test_diff_flags_drift_beyond_tolerance(traces):
    base_trace, cc_trace = traces
    result = summary.diff(base_trace, cc_trace, tolerance=0.0)
    assert "FLAGGED" in summary.render_diff(result)


def test_exported_trace_track_floor(traces):
    """The ISSUE acceptance floor: >=5 layer tracks, >=4 counter tracks."""
    _, cc_trace = traces
    payload = json.loads(cc_trace.to_chrome_trace())
    rows = payload["traceEvents"]
    layer_tracks = {
        r["args"]["layer"] for r in rows if r.get("cat") == "span"
    }
    counter_tracks = {r["name"] for r in rows if r["ph"] == "C"}
    assert len(layer_tracks) >= 5
    assert len(counter_tracks) >= 4


# -- serving telemetry (request-level forensics) ---------------------------


@pytest.fixture(scope="module")
def serve_traces():
    from repro.config import SystemConfig
    from repro.serve import ScenarioSpec, run_scenario

    spec = ScenarioSpec(rate_rps=16.0, duration_ns=units.NS_PER_SEC // 2)
    base_trace, base = run_scenario(
        spec, SystemConfig.base(), telemetry=True
    )
    cc_trace, cc = run_scenario(
        spec, SystemConfig.confidential(), telemetry=True
    )
    return base_trace, base, cc_trace, cc


def test_serve_attributions_reconstructs_results(serve_traces):
    base_trace, base, cc_trace, cc = serve_traces
    for trace, result in ((base_trace, base), (cc_trace, cc)):
        rebuilt = summary.serve_attributions(trace)
        assert rebuilt == sorted(
            result.attributions, key=lambda a: a.req_id
        )


def test_serve_tail_diff_matches_verdict_reports(serve_traces):
    base_trace, base, cc_trace, cc = serve_traces
    diff = summary.serve_tail_diff(base_trace, cc_trace)
    # The diff's endpoints are the two verdicts' TTFT p99 values, so
    # the attributed delta is exactly the verdict-level regression.
    base_p99 = base.report["ttft_ms"]["p99"]
    cc_p99 = cc.report["ttft_ms"]["p99"]
    assert diff["base_ttft_p99_ms"] == base_p99
    assert diff["cc_ttft_p99_ms"] == cc_p99
    assert units.to_ms(diff["delta_ns"]) == pytest.approx(
        cc_p99 - base_p99
    )
    # Complete attribution: component deltas sum exactly to the delta.
    assert sum(diff["components_delta_ns"].values()) == diff["delta_ns"]


def test_serve_tail_diff_rejects_non_serving_traces(traces):
    base_trace, cc_trace = traces
    with pytest.raises(ValueError, match="serve telemetry"):
        summary.serve_tail_diff(base_trace, cc_trace)


def test_summarize_includes_serving_section(serve_traces):
    _, _, cc_trace, cc = serve_traces
    text = summary.summarize(cc_trace)
    assert "serving telemetry" in text
    assert f"{len(cc.attributions)} requests" in text
    assert "request-time blame:" in text
    assert "ttft p50/p99" in text
