"""Tests for the composable CC-mitigation pass layer (repro.optim.passes).

Covers the zero-perturbation contract (identity pipeline == committed
verdict bytes), the pipeline grammar, pass composition/ordering, and a
Hypothesis property that ANY valid pass configuration preserves the
serving engine's no-lost-request ledger invariant.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.config import SystemConfig
from repro.optim import (
    BatchedTokenDownloadPass,
    CopyOverlapPass,
    KernelFusionPass,
    MitigationPass,
    PassError,
    PassPipeline,
    QuantizationPass,
    StagingReusePass,
    parse_pipeline,
)
from repro.serve import (
    EngineTuning,
    ScenarioSpec,
    TuningError,
    run_scenario,
    verdict_json,
)

SMALL = ScenarioSpec(rate_rps=16.0, duration_ns=units.NS_PER_SEC // 4)


# ---------------------------------------------------------------------------
# identity / zero-perturbation


def test_identity_pipeline_produces_trivial_tuning():
    pipeline = PassPipeline(())
    spec, tuning = pipeline.apply(SMALL)
    assert spec == SMALL
    assert tuning.trivial
    assert pipeline.pipeline_id() == "naive"
    assert pipeline.trivial


def test_identity_pipeline_verdict_bytes_equal_untuned():
    """The empty pipeline must reproduce the engine's verdict
    byte-for-byte — the invariant behind the committed ext_serving /
    ext_cluster_serving goldens (CI cmp-gates the goldens themselves)."""
    config = SystemConfig.confidential()
    _, untuned = run_scenario(SMALL, config)
    _, tuning = PassPipeline(()).apply(SMALL)
    _, tuned = run_scenario(SMALL, config, tuning=tuning)
    assert verdict_json(untuned) == verdict_json(tuned)


def test_trivial_tuning_adds_no_stats_keys():
    _, result = run_scenario(SMALL, SystemConfig.base())
    assert not any(k.startswith("tuning") for k in result.engine.stats)


def test_nontrivial_tuning_surfaces_in_stats():
    _, tuning = parse_pipeline("fusion+batch:2").apply(SMALL)
    _, result = run_scenario(SMALL, SystemConfig.confidential(),
                             tuning=tuning)
    assert result.engine.stats["tuning"] == "fusion+batch:2"
    assert result.engine.stats["tuning_fused_launches"] >= 0
    assert result.engine.stats["tuning_token_flushes"] > 0


# ---------------------------------------------------------------------------
# grammar and composition


def test_parse_full_pipeline_roundtrip():
    text = "fusion+overlap:2+batch:4+staging+quant:awq:8"
    pipeline = parse_pipeline(text)
    assert pipeline.pipeline_id() == text
    _, tuning = pipeline.apply(SMALL)
    assert tuning == EngineTuning(
        fuse_step_kernels=True, token_flush_every=4, d2h_streams=2,
        split_swap_staging=True, quant="awq", kv_bits=8,
    )


def test_parse_defaults_per_family():
    _, tuning = parse_pipeline("overlap+batch+quant").apply(SMALL)
    assert tuning.d2h_streams == 2
    assert tuning.token_flush_every == 4
    assert (tuning.quant, tuning.kv_bits) == ("awq", 8)


@pytest.mark.parametrize("text", [
    "bogus", "fusion+fusion", "overlap:1", "overlap:99", "batch:0",
    "batch:x", "quant:int3", "quant:awq:5", "fusion:2", "staging:1",
    "+fusion", "fusion++batch",
])
def test_parse_rejects_bad_specs(text):
    with pytest.raises(PassError):
        parse_pipeline(text)


def test_passes_satisfy_the_protocol():
    for p in (KernelFusionPass(), CopyOverlapPass(), QuantizationPass(),
              BatchedTokenDownloadPass(), StagingReusePass()):
        assert isinstance(p, MitigationPass)
        p.validate()
        assert p.describe()


def test_apply_is_pure_and_order_independent_for_disjoint_knobs():
    a = PassPipeline((KernelFusionPass(), StagingReusePass()))
    b = PassPipeline((StagingReusePass(), KernelFusionPass()))
    tuning = EngineTuning()
    _, ta = a.apply(SMALL, tuning)
    _, tb = b.apply(SMALL, tuning)
    assert ta == tb
    assert tuning == EngineTuning()  # inputs not mutated


def test_pipeline_rejects_non_pass_members():
    with pytest.raises(PassError, match="not a mitigation pass"):
        PassPipeline((object(),)).validate()


def test_pipeline_rejects_invalid_member_config():
    with pytest.raises(PassError):
        PassPipeline((CopyOverlapPass(streams=1),)).validate()


def test_accuracy_metadata_flows_through_pipeline():
    assert PassPipeline(()).accuracy_drop_pct() == 0.0
    pipeline = parse_pipeline("fusion+quant:awq:8")
    assert pipeline.accuracy_drop_pct() == pytest.approx(0.4)


def test_engine_rejects_out_of_range_tuning():
    with pytest.raises(TuningError):
        run_scenario(SMALL, tuning=EngineTuning(token_flush_every=0))
    with pytest.raises(TuningError):
        run_scenario(SMALL, tuning=EngineTuning(d2h_streams=99))


# ---------------------------------------------------------------------------
# property: any pass config preserves the lifecycle ledger invariant


TINY = ScenarioSpec(rate_rps=12.0, duration_ns=units.NS_PER_SEC // 5)

tunings = st.builds(
    EngineTuning,
    fuse_step_kernels=st.booleans(),
    token_flush_every=st.integers(min_value=1, max_value=8),
    d2h_streams=st.integers(min_value=1, max_value=4),
    split_swap_staging=st.booleans(),
    quant=st.sampled_from(["bf16", "awq"]),
    kv_bits=st.sampled_from([4, 8, 16]),
)


@settings(max_examples=12, deadline=None)
@given(tuning=tunings, cc=st.booleans())
def test_any_tuning_preserves_ledger_invariant(tuning, cc):
    """The engine's drain-time LifecycleLedger.check_complete() raises
    on any lost request, so a clean run IS the invariant; the report
    must additionally account for every offered request exactly once."""
    config = SystemConfig.confidential() if cc else SystemConfig.base()
    _, result = run_scenario(TINY, config, tuning=tuning)
    report = result.report
    assert report["offered"] == result.requests
    assert report["offered"] == (
        report["completed"] + report["rejected"]
        + report["shed"] + report["failed"]
    )
    # tuned engines change costs, never the request population
    assert result.arrival_digest == run_scenario(TINY, config)[1].arrival_digest
