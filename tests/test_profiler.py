"""Tests for the profiling layer: events, traces, CDFs, flame graphs,
and trace exports."""

import json

import pytest

from repro.config import CopyKind, MemoryKind
from repro.profiler import (
    EventKind,
    SummaryStats,
    Trace,
    build_tree,
    cdf,
    cdf_at,
    frame_share,
    kernel_event,
    launch_event,
    memcpy_event,
    ratio_of_means,
    ratio_of_totals,
    render_ascii,
    sync_event,
)


# --- events ------------------------------------------------------------


def test_event_end_and_validation():
    event = kernel_event("k", 100, 50, kqt_ns=10, stream=0)
    assert event.end_ns == 150
    with pytest.raises(ValueError):
        kernel_event("k", 0, -1, kqt_ns=0, stream=0)
    with pytest.raises(ValueError):
        launch_event("l", 0, 1, lqt_ns=-1, stream=0)


def test_memcpy_event_attrs():
    event = memcpy_event(
        CopyKind.H2D, 0, 100, 4096, MemoryKind.PINNED, managed=True
    )
    assert event.attrs["copy_kind"] is CopyKind.H2D
    assert event.attrs["bytes"] == 4096
    assert event.attrs["managed"] is True
    assert event.name == "memcpy_h2d"


# --- trace -------------------------------------------------------------


def _sample_trace():
    trace = Trace(label="sample")
    trace.add(launch_event("l1", 0, 5, lqt_ns=0, stream=0))
    trace.add(kernel_event("k1", 10, 100, kqt_ns=5, stream=0))
    trace.add(memcpy_event(CopyKind.D2H, 120, 30, 1024, MemoryKind.PAGEABLE))
    trace.add(sync_event("sync", 150, 10))
    return trace


def test_trace_queries():
    trace = _sample_trace()
    assert len(trace) == 4
    assert len(trace.launches()) == 1
    assert len(trace.kernels()) == 1
    assert len(trace.memcpys()) == 1
    assert trace.total_duration_ns(EventKind.KERNEL) == 100
    assert trace.span_ns() == 160
    assert trace.filter(lambda e: e.duration_ns > 20) == [
        trace.events[1], trace.events[2]
    ]


def test_trace_sorted_by_start():
    trace = Trace()
    trace.add(kernel_event("late", 100, 10, kqt_ns=0, stream=0))
    trace.add(kernel_event("early", 0, 10, kqt_ns=0, stream=0))
    assert [e.name for e in trace.sorted_by_start()] == ["early", "late"]


def test_chrome_trace_export_valid_json():
    payload = json.loads(_sample_trace().to_chrome_trace())
    events = payload["traceEvents"]
    x_rows = [e for e in events if e["ph"] == "X"]
    meta_rows = [e for e in events if e["ph"] == "M"]
    assert len(x_rows) == 4
    kernel = next(e for e in x_rows if e["name"] == "k1")
    assert kernel["ph"] == "X"
    assert kernel["ts"] == pytest.approx(0.01)  # ns -> us
    # Perfetto needs integer pid/tid; track naming rides in "M" rows.
    assert isinstance(kernel["pid"], int)
    assert isinstance(kernel["tid"], int)
    thread_names = {
        m["args"]["name"]: m["tid"]
        for m in meta_rows
        if m["name"] == "thread_name"
    }
    assert thread_names["GPU:compute"] == kernel["tid"]
    process = next(m for m in meta_rows if m["name"] == "process_name")
    assert process["args"]["name"] == "sample"
    copy = next(e for e in x_rows if e["name"].startswith("memcpy"))
    assert copy["args"]["copy_kind"] == "d2h"


# --- statistics ----------------------------------------------------------


def test_summary_stats():
    stats = SummaryStats.of([1, 2, 3, 4, 5])
    assert stats.mean == 3
    assert stats.median == 3
    assert stats.minimum == 1
    assert stats.maximum == 5
    assert stats.total == 15
    assert SummaryStats.of([]).count == 0


def test_cdf_basic():
    values, probs = cdf([3, 1, 2])
    assert values == [1, 2, 3]
    assert probs == [pytest.approx(1 / 3), pytest.approx(2 / 3), 1.0]


def test_cdf_trim_top_matches_paper_rule():
    values, _ = cdf(list(range(10)), trim_top=5)
    assert values == [0, 1, 2, 3, 4]
    with pytest.raises(ValueError):
        cdf([1], trim_top=-1)
    assert cdf([], trim_top=3) == ([], [])


def test_cdf_at():
    assert cdf_at([1, 2, 3, 4], 2) == 0.5
    assert cdf_at([], 2) == 0.0


def test_ratio_helpers():
    assert ratio_of_means([2, 4], [1, 1]) == 3.0
    assert ratio_of_totals([2, 4], [1, 2]) == 2.0
    assert ratio_of_means([1], []) == float("inf")
    assert ratio_of_totals([], []) == 1.0


# --- flame graphs ---------------------------------------------------------


def test_flame_tree_aggregation():
    samples = {
        ("a", "b"): 60,
        ("a", "c"): 30,
        ("a",): 10,
    }
    tree = build_tree(samples, root_name="root")
    assert tree.total_ns == 100
    a = tree.children["a"]
    assert a.total_ns == 100
    assert a.self_ns == 10
    assert a.children["b"].total_ns == 60


def test_frame_share():
    tree = build_tree({("a", "hot"): 75, ("a", "cold"): 25})
    assert frame_share(tree, "hot") == pytest.approx(0.75)
    assert frame_share(tree, "missing") == 0.0


def test_render_ascii_contains_frames_and_shares():
    tree = build_tree({("launch", "hypercall"): 90, ("launch",): 10})
    text = render_ascii(tree)
    assert "launch" in text
    assert "hypercall" in text
    assert "90.0%" in text
