"""Tests for figure-result infrastructure, calibration registry, and
config plumbing."""

import json

import pytest

from repro import units
from repro.calibration import PAPER, target, within
from repro.config import CCMode, SystemConfig
from repro.figures.common import FigureResult


# --- FigureResult -------------------------------------------------------


def _figure():
    fig = FigureResult(
        figure_id="fig_test",
        title="Test figure",
        columns=("name", "value"),
        rows=[("alpha", 1.2345), ("beta", 123456.0)],
        notes=["a note"],
    )
    fig.add_comparison("metric", 2.0, 2.1)
    return fig


def test_text_rendering():
    text = _figure().to_text()
    assert "fig_test" in text
    assert "alpha" in text
    assert "paper-vs-measured" in text
    assert "a note" in text


def test_json_roundtrip():
    payload = json.loads(_figure().to_json())
    assert payload["figure_id"] == "fig_test"
    assert payload["rows"][0] == ["alpha", 1.2345]
    assert payload["comparisons"][0]["paper"] == 2.0


def test_save_writes_json_and_txt(tmp_path):
    fig = _figure()
    path = fig.save(str(tmp_path))
    assert path.endswith("fig_test.json")
    assert (tmp_path / "fig_test.txt").exists()
    assert json.loads((tmp_path / "fig_test.json").read_text())


def test_enum_cells_serialize(tmp_path):
    from repro.config import CopyKind

    fig = FigureResult("fig_enum", "t", ("kind",), [(CopyKind.H2D,)])
    payload = json.loads(fig.to_json())
    assert payload["rows"][0] == ["h2d"]


# --- calibration registry ---------------------------------------------------


def test_paper_registry_entries():
    assert target("copy.mean_slowdown").value == 5.80
    assert "Observation 3" in target("copy.mean_slowdown").source
    with pytest.raises(KeyError):
        target("nonexistent.metric")


def test_within_tolerance():
    assert within(5.9, "copy.mean_slowdown", rel_tol=0.05)
    assert not within(8.0, "copy.mean_slowdown", rel_tol=0.05)


def test_registry_covers_all_sections():
    prefixes = {key.split(".")[0] for key in PAPER}
    assert {"pcie", "crypto", "copy", "alloc", "launch", "ket", "cnn"} <= prefixes


# --- config -----------------------------------------------------------------


def test_config_modes():
    assert SystemConfig.base().cc is CCMode.OFF
    assert SystemConfig.confidential().cc is CCMode.ON
    assert SystemConfig.confidential().cc_on


def test_config_replace_is_functional():
    base = SystemConfig.base()
    other = base.replace(seed=1)
    assert other.seed == 1
    assert base.seed != 1


def test_hypercall_cost_by_mode():
    base = SystemConfig.base()
    cc = SystemConfig.confidential()
    assert base.hypercall_ns() == base.tdx.hypercall_ns
    assert cc.hypercall_ns() == cc.tdx.td_hypercall_ns


def test_table1_defaults_match_paper():
    config = SystemConfig.base()
    assert config.cpu.cores == 32
    assert config.cpu.sockets == 2
    assert config.cpu.freq_ghz == 2.1
    assert config.gpu.hbm_bytes == 94 * units.GiB
    assert config.pcie.generation == 5
    assert config.pcie.lanes == 16
    assert config.vm_memory_bytes == 64 * units.GiB


def test_config_validate_accepts_defaults():
    SystemConfig.base().validate()
    SystemConfig.confidential().validate()


def test_config_validate_rejects_nonsense():
    import dataclasses

    import pytest as _pytest

    config = SystemConfig.base()
    bad_gpu = config.replace(
        gpu=dataclasses.replace(config.gpu, default_efficiency=1.5)
    )
    with _pytest.raises(ValueError, match="default_efficiency"):
        bad_gpu.validate()
    bad_tdx = config.replace(
        tdx=dataclasses.replace(config.tdx, td_hypercall_ns=1)
    )
    with _pytest.raises(ValueError, match="td_hypercall_ns"):
        bad_tdx.validate()


def test_machine_rejects_invalid_config():
    import dataclasses

    import pytest as _pytest

    from repro.cuda import Machine

    config = SystemConfig.base()
    bad = config.replace(
        launch=dataclasses.replace(config.launch, launch_queue_depth=0)
    )
    with _pytest.raises(ValueError, match="launch_queue_depth"):
        Machine(bad)
