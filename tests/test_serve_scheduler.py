"""Tests for the pure continuous-batching core and the KV pager.

The property tests pin down the scheduler invariants the serving
engine relies on: the per-iteration token budget is never exceeded,
decode never runs the block pool dry, FCFS admission follows arrival
order (no starvation), and the allocator balance is zero at drain —
across both preemption modes, under adversarially small pools.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm.kvcache import KVCacheError
from repro.serve import (
    ContinuousBatchingScheduler,
    KVPager,
    SchedulerConfig,
    ServeRequest,
)
from repro.serve.scheduler import SchedulerError


def _request(req_id, prompt, gen, tenant="t0", arrival_ns=0):
    return ServeRequest(req_id=req_id, tenant=tenant, arrival_ns=arrival_ns,
                        prompt_tokens=prompt, gen_tokens=gen)


def _pager(num_blocks=32, block_tokens=4, mode="swap"):
    # kv_bytes_per_token=1 keeps the byte math trivial in tests.
    return KVPager(num_blocks * block_tokens, block_tokens, 1, mode=mode)


def _drive(sched, requests, max_iters=50_000):
    """Submit everything up front and run the scheduler to drain,
    checking the iteration invariants along the way."""
    for request in requests:
        sched.submit(request)
    iters = 0
    while sched.has_work():
        plan = sched.plan()
        assert plan.busy, "scheduler stalled with pending work"
        assert (
            plan.prefill_tokens + len(plan.decode_ids)
            <= sched.config.max_batch_tokens
        ), "batch token budget exceeded"
        sched.finish_step(plan.decode_ids)
        sched.pager.check_invariants()
        iters += 1
        assert iters < max_iters, "scheduler failed to drain"
    return iters


# -- unit tests ------------------------------------------------------------


def test_config_validation():
    with pytest.raises(SchedulerError, match="policy"):
        SchedulerConfig(policy="lifo").validate()
    with pytest.raises(SchedulerError, match="max_num_seqs"):
        SchedulerConfig(max_num_seqs=0).validate()
    with pytest.raises(SchedulerError, match="exceed"):
        SchedulerConfig(max_num_seqs=16, max_batch_tokens=16).validate()
    with pytest.raises(SchedulerError, match="preemption"):
        SchedulerConfig(preemption="drop").validate()
    with pytest.raises(SchedulerError, match="does not"):
        ContinuousBatchingScheduler(
            SchedulerConfig(preemption="recompute"), _pager(mode="swap")
        )


def test_admission_control_rejects_impossible_requests():
    sched = ContinuousBatchingScheduler(
        SchedulerConfig(max_batch_tokens=64), _pager(num_blocks=8)
    )
    assert not sched.submit(_request(0, prompt=30, gen=10))  # 40 > 32 cap
    assert not sched.submit(_request(1, prompt=64, gen=1))  # prompt+1 > 64
    assert sched.submit(_request(2, prompt=8, gen=4))
    assert [r.req_id for r in sched.rejected] == [0, 1]


def test_single_request_runs_to_completion():
    sched = ContinuousBatchingScheduler(SchedulerConfig(), _pager())
    _drive(sched, [_request(0, prompt=8, gen=5)])
    assert sched.pager.drained()
    assert sched.pager.stats.preemptions == 0
    assert sched.admit_order == [0]


def test_fcfs_admits_in_arrival_order():
    sched = ContinuousBatchingScheduler(
        SchedulerConfig(policy="fcfs"), _pager()
    )
    _drive(sched, [_request(i, prompt=4 + (7 - i), gen=2) for i in range(8)])
    assert sched.admit_order == sorted(sched.admit_order)


def test_spf_prefers_short_prompts():
    # One seat at a time: admission order == policy order.
    sched = ContinuousBatchingScheduler(
        SchedulerConfig(policy="spf", max_num_seqs=1, max_batch_tokens=64),
        _pager(),
    )
    requests = [_request(0, 16, 1), _request(1, 4, 1), _request(2, 8, 1)]
    for r in requests:
        sched.submit(r)
    sched.plan()  # admits exactly one
    assert sched.admit_order == [1]


def test_swap_preemption_charges_bytes_and_restores():
    sched = ContinuousBatchingScheduler(
        SchedulerConfig(max_num_seqs=4, max_batch_tokens=64),
        _pager(num_blocks=6, block_tokens=4, mode="swap"),
    )
    # Two sequences that outgrow a 24-token pool force an eviction.
    _drive(sched, [_request(0, 8, 10), _request(1, 8, 10)])
    stats = sched.pager.stats
    assert stats.preemptions > 0
    assert stats.restores == stats.preemptions
    assert stats.swap_out_bytes == stats.swap_in_bytes > 0
    assert stats.recompute_tokens == 0
    assert sched.pager.drained()


def test_recompute_preemption_rebuilds_prefill():
    sched = ContinuousBatchingScheduler(
        SchedulerConfig(max_num_seqs=4, max_batch_tokens=64,
                        preemption="recompute"),
        _pager(num_blocks=6, block_tokens=4, mode="recompute"),
    )
    _drive(sched, [_request(0, 8, 10), _request(1, 8, 10)])
    stats = sched.pager.stats
    assert stats.preemptions > 0
    assert stats.recompute_tokens > 0
    assert stats.swap_out_bytes == stats.swap_in_bytes == 0
    assert sched.pager.drained()


def test_recompute_restore_longer_than_budget_warms_in_chunks():
    """A restored sequence longer than max_batch_tokens must make
    progress through chunked warming without breaking the budget."""
    sched = ContinuousBatchingScheduler(
        SchedulerConfig(max_num_seqs=2, max_batch_tokens=16,
                        preemption="recompute"),
        _pager(num_blocks=8, block_tokens=4, mode="recompute"),
    )
    # Both fit the budget together, but two 18-token sequences need 10
    # blocks against a pool of 8: the loser is evicted holding ~16
    # tokens, whose recompute exceeds the per-iteration room (budget -
    # decode slot), so it must come back through chunked warming.
    _drive(sched, [_request(0, 6, 12), _request(1, 6, 12)])
    assert sched.pager.stats.preemptions > 0
    assert sched.pager.stats.recompute_tokens > sched.config.max_batch_tokens - 2
    assert sched.pager.drained()


def test_pager_preempt_restore_roundtrip():
    pager = _pager(num_blocks=4, block_tokens=4, mode="swap")
    pager.admit(7, 6)
    plan = pager.preempt(7)
    assert plan.tokens == 6 and plan.swap_bytes == 6
    assert pager.evicted_ids == [7]
    assert pager.evicted_tokens(7) == 6
    with pytest.raises(KVCacheError, match="not evicted"):
        pager.evicted_tokens(8)
    with pytest.raises(KVCacheError, match="already evicted"):
        pager.preempt(7)
    restore = pager.restore(7)
    assert restore.tokens == 6 and restore.swap_bytes == 6
    assert pager.sequence_length(7) == 6
    pager.release(7)
    assert pager.drained()
    pager.check_invariants()


def test_pager_rejects_unknown_mode():
    with pytest.raises(KVCacheError, match="preemption mode"):
        KVPager(64, 4, 1, mode="discard")


# -- property tests --------------------------------------------------------


@st.composite
def _scenarios(draw):
    max_num_seqs = draw(st.integers(1, 6))
    max_batch_tokens = draw(st.integers(max_num_seqs + 1, 96))
    policy = draw(st.sampled_from(("fcfs", "spf")))
    preemption = draw(st.sampled_from(("swap", "recompute")))
    num_blocks = draw(st.integers(4, 24))
    block_tokens = draw(st.sampled_from((2, 4, 8)))
    shapes = draw(
        st.lists(
            st.tuples(st.integers(1, 40), st.integers(1, 16)),
            min_size=1,
            max_size=20,
        )
    )
    requests = [
        _request(i, prompt, gen, tenant=f"t{i % 3}")
        for i, (prompt, gen) in enumerate(shapes)
    ]
    config = SchedulerConfig(
        policy=policy,
        max_num_seqs=max_num_seqs,
        max_batch_tokens=max_batch_tokens,
        preemption=preemption,
    )
    return config, num_blocks, block_tokens, requests


@settings(max_examples=120, deadline=None)
@given(_scenarios())
def test_property_drain_without_budget_or_block_violations(scenario):
    """Every generated mix drains: the token budget holds each
    iteration (asserted in _drive), decode never exhausts the pool
    (would raise OutOfBlocksError), and the allocator balance is zero
    at the end across both preemption modes."""
    config, num_blocks, block_tokens, requests = scenario
    pager = _pager(num_blocks, block_tokens, mode=config.preemption)
    sched = ContinuousBatchingScheduler(config, pager)
    _drive(sched, requests)
    assert pager.drained()
    assert pager.free_blocks == pager.cache.num_blocks
    # Everything was either served or rejected up front — no limbo.
    served = set(sched.admit_order)
    rejected = {r.req_id for r in sched.rejected}
    assert served | rejected == {r.req_id for r in requests}
    assert not served & rejected


@settings(max_examples=60, deadline=None)
@given(_scenarios())
def test_property_fcfs_never_starves(scenario):
    """Under FCFS the head of the queue is never bypassed: first
    admissions happen in strict arrival order."""
    config, num_blocks, block_tokens, requests = scenario
    if config.policy != "fcfs":
        config = SchedulerConfig(
            policy="fcfs",
            max_num_seqs=config.max_num_seqs,
            max_batch_tokens=config.max_batch_tokens,
            preemption=config.preemption,
        )
    pager = _pager(num_blocks, block_tokens, mode=config.preemption)
    sched = ContinuousBatchingScheduler(config, pager)
    _drive(sched, requests)
    assert sched.admit_order == sorted(sched.admit_order)


@settings(max_examples=60, deadline=None)
@given(_scenarios())
def test_property_preempted_work_is_never_lost(scenario):
    """Every admitted request eventually finishes with exactly
    prompt + gen tokens accounted, however often it was preempted."""
    config, num_blocks, block_tokens, requests = scenario
    pager = _pager(num_blocks, block_tokens, mode=config.preemption)
    sched = ContinuousBatchingScheduler(config, pager)

    finished = []
    for request in requests:
        sched.submit(request)
    iters = 0
    while sched.has_work():
        plan = sched.plan()
        finished.extend(sched.finish_step(plan.decode_ids))
        iters += 1
        assert iters < 50_000
    assert sorted(finished) == sorted(sched.admit_order)
    assert sched.pager.stats.restores <= sched.pager.stats.preemptions
