"""Tests for CTR, GHASH, GCM, and XTS modes against published vectors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import AESCTR, AESGCM, AESXTS, GHASH, AuthenticationError


# --- CTR ----------------------------------------------------------------


def test_ctr_nist_sp800_38a_f51():
    # NIST SP 800-38A F.5.1 CTR-AES128.
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    nonce = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
    plaintext = bytes.fromhex(
        "6bc1bee22e409f96e93d7e117393172a"
        "ae2d8a571e03ac9c9eb76fac45af8e51"
    )
    expected = bytes.fromhex(
        "874d6191b620e3261bef6864990db6ce"
        "9806f66b7970fdff8617187bb9fffdff"
    )
    ctr = AESCTR(key)
    assert ctr.crypt(nonce, plaintext) == expected
    assert ctr.crypt(nonce, expected) == plaintext


def test_ctr_partial_block():
    ctr = AESCTR(b"\x01" * 16)
    nonce = b"\x00" * 16
    data = b"abcde"
    assert ctr.crypt(nonce, ctr.crypt(nonce, data)) == data


def test_ctr_rejects_bad_nonce():
    with pytest.raises(ValueError):
        AESCTR(b"\x00" * 16).crypt(b"\x00" * 8, b"data")


# --- GHASH ---------------------------------------------------------------


def test_ghash_zero_inputs():
    ghash = GHASH(b"\x00" * 16)
    ghash.update(b"\x00" * 16)
    assert ghash.digest() == b"\x00" * 16


def test_ghash_requires_16_byte_subkey():
    with pytest.raises(ValueError):
        GHASH(b"\x00" * 8)


# --- GCM ----------------------------------------------------------------
# Vectors from the original McGrew-Viega GCM spec / NIST validation set.

GCM_VECTORS = [
    # (key, iv, plaintext, aad, ciphertext, tag)
    (
        "00000000000000000000000000000000",
        "000000000000000000000000",
        "",
        "",
        "",
        "58e2fccefa7e3061367f1d57a4e7455a",
    ),
    (
        "00000000000000000000000000000000",
        "000000000000000000000000",
        "00000000000000000000000000000000",
        "",
        "0388dace60b6a392f328c2b971b2fe78",
        "ab6e47d42cec13bdf53a67b21257bddf",
    ),
    (
        "feffe9928665731c6d6a8f9467308308",
        "cafebabefacedbaddecaf888",
        "d9313225f88406e5a55909c5aff5269a"
        "86a7a9531534f7da2e4c303d8a318a72"
        "1c3c0c95956809532fcf0e2449a6b525"
        "b16aedf5aa0de657ba637b391aafd255",
        "",
        "42831ec2217774244b7221b784d0d49c"
        "e3aa212f2c02a4e035c17e2329aca12e"
        "21d514b25466931c7d8f6a5aac84aa05"
        "1ba30b396a0aac973d58e091473f5985",
        "4d5c2af327cd64a62cf35abd2ba6fab4",
    ),
    (
        "feffe9928665731c6d6a8f9467308308",
        "cafebabefacedbaddecaf888",
        "d9313225f88406e5a55909c5aff5269a"
        "86a7a9531534f7da2e4c303d8a318a72"
        "1c3c0c95956809532fcf0e2449a6b525"
        "b16aedf5aa0de657ba637b39",
        "feedfacedeadbeeffeedfacedeadbeefabaddad2",
        "42831ec2217774244b7221b784d0d49c"
        "e3aa212f2c02a4e035c17e2329aca12e"
        "21d514b25466931c7d8f6a5aac84aa05"
        "1ba30b396a0aac973d58e091",
        "5bc94fbc3221a5db94fae95ae7121a47",
    ),
]


@pytest.mark.parametrize("key,iv,pt,aad,ct,tag", GCM_VECTORS)
def test_gcm_known_answer(key, iv, pt, aad, ct, tag):
    gcm = AESGCM(bytes.fromhex(key))
    ciphertext, computed_tag = gcm.encrypt(
        bytes.fromhex(iv), bytes.fromhex(pt), bytes.fromhex(aad)
    )
    assert ciphertext.hex() == ct
    assert computed_tag.hex() == tag
    plaintext = gcm.decrypt(
        bytes.fromhex(iv), ciphertext, computed_tag, bytes.fromhex(aad)
    )
    assert plaintext.hex() == pt


def test_gcm_tamper_detection():
    gcm = AESGCM(b"\x11" * 16)
    ct, tag = gcm.encrypt(b"\x00" * 12, b"secret payload", b"hdr")
    corrupted = bytes([ct[0] ^ 1]) + ct[1:]
    with pytest.raises(AuthenticationError):
        gcm.decrypt(b"\x00" * 12, corrupted, tag, b"hdr")


def test_gcm_wrong_aad_rejected():
    gcm = AESGCM(b"\x11" * 16)
    ct, tag = gcm.encrypt(b"\x00" * 12, b"secret payload", b"hdr")
    with pytest.raises(AuthenticationError):
        gcm.decrypt(b"\x00" * 12, ct, tag, b"other")


def test_gcm_non96bit_iv():
    # GCM must also support IV lengths other than 96 bits via GHASH(J0).
    gcm = AESGCM(b"\x22" * 16)
    iv = b"\x03" * 16
    ct, tag = gcm.encrypt(iv, b"x" * 33)
    assert gcm.decrypt(iv, ct, tag) == b"x" * 33


@settings(max_examples=20, deadline=None)
@given(
    key=st.binary(min_size=16, max_size=16),
    iv=st.binary(min_size=12, max_size=12),
    pt=st.binary(min_size=0, max_size=100),
    aad=st.binary(min_size=0, max_size=40),
)
def test_gcm_roundtrip_property(key, iv, pt, aad):
    gcm = AESGCM(key)
    ct, tag = gcm.encrypt(iv, pt, aad)
    assert len(ct) == len(pt)
    assert gcm.decrypt(iv, ct, tag, aad) == pt


# --- XTS ----------------------------------------------------------------


def test_xts_ieee1619_vector1():
    # IEEE 1619 Vector 1: all-zero keys and data unit 0.
    xts = AESXTS(b"\x00" * 32)
    ct = xts.encrypt(0, b"\x00" * 32)
    assert ct.hex() == (
        "917cf69ebd68b2ec9b9fe9a3eadda692"
        "cd43d2f59598ed858c02c2652fbf922e"
    )
    assert xts.decrypt(0, ct) == b"\x00" * 32


def test_xts_ieee1619_vector4_prefix():
    # IEEE 1619 Vector 4 (first 32 bytes): sequential plaintext, sector 0.
    key = bytes.fromhex(
        "27182818284590452353602874713526"
        "31415926535897932384626433832795"
    )
    plaintext = bytes(range(32))
    xts = AESXTS(key)
    ct = xts.encrypt(0, plaintext)
    assert ct.hex().startswith("27a7479befa1d476489f308cd4cfa6e2")


def test_xts_different_sectors_differ():
    xts = AESXTS(b"\x07" * 32)
    data = b"A" * 4096
    assert xts.encrypt(0, data) != xts.encrypt(1, data)


def test_xts_rejects_tiny_and_ragged_units():
    xts = AESXTS(b"\x00" * 32)
    with pytest.raises(ValueError):
        xts.encrypt(0, b"\x00" * 8)
    with pytest.raises(NotImplementedError):
        xts.encrypt(0, b"\x00" * 24)


@settings(max_examples=15, deadline=None)
@given(
    key=st.binary(min_size=32, max_size=32),
    sector=st.integers(min_value=0, max_value=2**64 - 1),
    blocks=st.integers(min_value=1, max_value=8),
    payload=st.binary(min_size=16, max_size=16),
)
def test_xts_roundtrip_property(key, sector, blocks, payload):
    xts = AESXTS(key)
    data = payload * blocks
    assert xts.decrypt(sector, xts.encrypt(sector, data)) == data
