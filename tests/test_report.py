"""Tests for the reproduction-report aggregator."""

import json

from repro.cli import main
from repro.figures.report import (
    ComparisonRow,
    accuracy_histogram,
    comparison_rows,
    load_results,
    render,
)


def _write_result(tmp_path, figure_id, comparisons):
    payload = {
        "figure_id": figure_id,
        "title": "t",
        "columns": [],
        "rows": [],
        "notes": [],
        "comparisons": comparisons,
    }
    (tmp_path / f"{figure_id}.json").write_text(json.dumps(payload))


def test_load_and_rows(tmp_path):
    _write_result(
        tmp_path, "fig_x",
        [{"metric": "m1", "paper": 2.0, "measured": 2.1}],
    )
    _write_result(
        tmp_path, "fig_y",
        [{"metric": "m2", "paper": 10.0, "measured": 14.0}],
    )
    assert len(load_results(str(tmp_path))) == 2
    rows = comparison_rows(str(tmp_path))
    assert len(rows) == 2
    assert rows[0].relative_error == 0.05000000000000002 or abs(
        rows[0].relative_error - 0.05
    ) < 1e-9


def test_malformed_json_skipped(tmp_path):
    (tmp_path / "broken.json").write_text("{not json")
    (tmp_path / "list.json").write_text("[1, 2]")
    assert load_results(str(tmp_path)) == []


def test_accuracy_histogram_buckets():
    rows = [
        ComparisonRow("f", "a", 1.0, 1.02),   # <=5%
        ComparisonRow("f", "b", 1.0, 1.08),   # <=10%
        ComparisonRow("f", "c", 1.0, 1.20),   # <=25%
        ComparisonRow("f", "d", 1.0, 1.40),   # <=50%
        ComparisonRow("f", "e", 1.0, 3.00),   # >50%
        ComparisonRow("f", "z", 0.0, 1.0),    # n/a
    ]
    histogram = accuracy_histogram(rows)
    assert histogram == {
        "<=5%": 1, "<=10%": 1, "<=25%": 1, "<=50%": 1, ">50%": 1, "n/a": 1
    }


def test_render_table(tmp_path):
    _write_result(
        tmp_path, "fig_x",
        [{"metric": "mean slowdown", "paper": 5.8, "measured": 5.5}],
    )
    text = render(str(tmp_path))
    assert "mean slowdown" in text
    assert "accuracy histogram" in text


def test_render_empty_dir(tmp_path):
    assert "no results" in render(str(tmp_path))


def test_cli_report(tmp_path, capsys):
    _write_result(
        tmp_path, "fig_x",
        [{"metric": "m", "paper": 1.0, "measured": 1.0}],
    )
    assert main(["report", "--dir", str(tmp_path)]) == 0
    assert "1 paper-vs-measured" in capsys.readouterr().out


def test_scan_results_collects_skipped(tmp_path):
    from repro.figures.report import scan_results

    _write_result(
        tmp_path, "fig_ok",
        [{"metric": "m", "paper": 1.0, "measured": 1.0}],
    )
    (tmp_path / "broken.json").write_text('{"figure_id": "fig_trunc"')
    (tmp_path / "list.json").write_text("[1, 2]")
    payloads, skipped = scan_results(str(tmp_path))
    assert [p["figure_id"] for p in payloads] == ["fig_ok"]
    reasons = {item.path.rsplit("/", 1)[-1]: item.reason for item in skipped}
    assert "corrupt JSON" in reasons["broken.json"]
    assert reasons["list.json"] == "not a figure payload"


def test_render_warns_about_skipped_files(tmp_path):
    _write_result(
        tmp_path, "fig_ok",
        [{"metric": "m", "paper": 1.0, "measured": 1.0}],
    )
    (tmp_path / "broken.json").write_text("{not json")
    text = render(str(tmp_path))
    assert "WARNING: skipped 1 unusable result file(s)" in text
    assert "broken.json" in text


def test_render_warns_even_with_no_usable_results(tmp_path):
    (tmp_path / "broken.json").write_text("{not json")
    text = render(str(tmp_path))
    assert "no results" in text
    assert "broken.json" in text


def test_paper_zero_rows_surface_in_report(tmp_path):
    _write_result(
        tmp_path, "fig_zero",
        [{"metric": "zero-baseline metric", "paper": 0.0, "measured": 0.7}],
    )
    rows = comparison_rows(str(tmp_path))
    assert len(rows) == 1 and rows[0].relative_error is None
    assert accuracy_histogram(rows)["n/a"] == 1
    text = render(str(tmp_path))
    assert "zero-baseline metric" in text
    assert "n/a" in text
