"""Tests for the TEE-IO / TDX-Connect what-if transfer path."""

import dataclasses

import pytest

from repro import units
from repro.config import CopyKind, MemoryKind, SystemConfig
from repro.cuda import run_app
from repro.cuda.transfers import achieved_bandwidth_gbps, plan_copy
from repro.gpu import nanosleep_kernel
from repro.sim import Simulator
from repro.tdx import GuestContext


def _teeio_config():
    cc = SystemConfig.confidential()
    return cc.replace(tdx=dataclasses.replace(cc.tdx, teeio=True))


def _plan(config, memory=MemoryKind.PINNED, size=64 * units.MiB, cold=True):
    guest = GuestContext(Simulator(), config)
    return plan_copy(config, guest, CopyKind.H2D, size, memory, cold)


def test_teeio_skips_software_crypto_and_bounce():
    plan = _plan(_teeio_config())
    assert plan.cpu_ns == 0  # no staging/crypto for pinned memory
    assert plan.hypercalls == 0
    assert plan.managed_label is False


def test_teeio_bandwidth_near_native():
    base_bw = achieved_bandwidth_gbps(
        _plan(SystemConfig.base()), 64 * units.MiB
    )
    teeio_bw = achieved_bandwidth_gbps(_plan(_teeio_config()), 64 * units.MiB)
    cc_bw = achieved_bandwidth_gbps(
        _plan(SystemConfig.confidential(), cold=False), 64 * units.MiB
    )
    assert teeio_bw > 5 * cc_bw
    assert teeio_bw == pytest.approx(base_bw * 0.94, rel=0.02)


def test_teeio_pinned_faster_than_pageable_again():
    """TEE-IO restores native pinning (Observation 1 reversed)."""
    pinned = _plan(_teeio_config(), MemoryKind.PINNED).total_ns
    pageable = _plan(_teeio_config(), MemoryKind.PAGEABLE).total_ns
    assert pinned < 0.8 * pageable


def test_teeio_end_to_end_app():
    def copy_app(rt):
        dev = yield from rt.malloc(32 * units.MiB)
        host = yield from rt.malloc_host(32 * units.MiB)
        yield from rt.memcpy(dev, host)
        yield from rt.launch(nanosleep_kernel(units.us(50)))
        yield from rt.synchronize()

    cc_trace, _ = run_app(copy_app, SystemConfig.confidential())
    teeio_trace, _ = run_app(copy_app, _teeio_config())
    assert teeio_trace.span_ns() < cc_trace.span_ns()
    # KET unaffected either way.
    assert (
        teeio_trace.kernels()[0].duration_ns
        == cc_trace.kernels()[0].duration_ns
    )


def test_teeio_does_not_change_base_mode():
    base = SystemConfig.base()
    base_teeio = base.replace(tdx=dataclasses.replace(base.tdx, teeio=True))
    assert _plan(base).total_ns == _plan(
        base_teeio, cold=True
    ).total_ns  # teeio only matters when cc is on
