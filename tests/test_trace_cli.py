"""Tests for the ``repro trace`` CLI: export, validate, summarize,
diff, and their error paths."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def cc_trace_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "gemm_cc.json"
    assert main(["trace", "export", "gemm", "--cc", "-o", str(path)]) == 0
    return path


@pytest.fixture(scope="module")
def base_trace_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "gemm_base.json"
    assert main(["trace", "export", "gemm", "-o", str(path)]) == 0
    return path


def test_export_writes_perfetto_trace(cc_trace_file, capsys):
    payload = json.loads(cc_trace_file.read_text())
    rows = payload["traceEvents"]
    # Spans, counters and metadata all present; integer pid/tid.
    assert any(r.get("cat") == "span" for r in rows)
    assert any(r["ph"] == "C" for r in rows)
    assert any(r["ph"] == "M" and r["name"] == "process_name" for r in rows)
    assert all(isinstance(r["pid"], int) for r in rows)
    # Counter ("C") rows are per-process; every slice row needs a tid.
    assert all(
        isinstance(r["tid"], int) for r in rows if r["ph"] == "X"
    )


def test_export_reports_counts(tmp_path, capsys):
    path = tmp_path / "t.json"
    assert main(["trace", "export", "gemm", "--cc", "-o", str(path)]) == 0
    out = capsys.readouterr().out
    assert "gemm|cc" in out
    assert "spans" in out and "metrics" in out


def test_validate_accepts_own_export(cc_trace_file, capsys):
    assert main(["trace", "validate", str(cc_trace_file)]) == 0
    assert "valid" in capsys.readouterr().out


def test_validate_rejects_garbage(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('{"traceEvents": [{"ph": "X", "name": 3}]}')
    assert main(["trace", "validate", str(bad)]) == 1
    assert "schema violation" in capsys.readouterr().err


def test_summarize_from_file(cc_trace_file, capsys):
    assert main(["trace", "summarize", "--input", str(cc_trace_file)]) == 0
    out = capsys.readouterr().out
    assert "per-layer time" in out
    assert "wall-clock attribution" in out
    assert "Sec. V model terms" in out


def test_summarize_by_running_app(capsys):
    assert main(["trace", "summarize", "gemm", "--cc", "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "top 3 spans" in out


def test_summarize_requires_app_or_input():
    with pytest.raises(SystemExit, match="APP or --input"):
        main(["trace", "summarize"])


def test_diff_from_files(base_trace_file, cc_trace_file, capsys):
    code = main([
        "trace", "diff",
        "--base", str(base_trace_file),
        "--cc-trace", str(cc_trace_file),
    ])
    out = capsys.readouterr().out
    assert code == 0  # model drift within the default 1%
    assert "E: software encryption" in out
    assert "model terms within tolerance" in out


def test_diff_by_running_app(capsys):
    assert main(["trace", "diff", "gemm"]) == 0
    out = capsys.readouterr().out
    assert "diff gemm|base -> gemm|cc" in out


def test_diff_flags_exit_nonzero(base_trace_file, cc_trace_file, capsys):
    code = main([
        "trace", "diff",
        "--base", str(base_trace_file),
        "--cc-trace", str(cc_trace_file),
        "--tolerance", "0",
    ])
    assert code == 1
    assert "FLAGGED" in capsys.readouterr().out


def test_diff_requires_both_files(base_trace_file):
    with pytest.raises(SystemExit, match="together"):
        main(["trace", "diff", "--base", str(base_trace_file)])


def test_diff_requires_app_or_files():
    with pytest.raises(SystemExit, match="APP or --base"):
        main(["trace", "diff"])
