"""Composition tests: repro.multigpu collectives x repro.faults.

The executable ring all-reduce (:func:`repro.multigpu.run_ring_all_reduce`)
must obey the fault layer's determinism contract:

* with ``link.transfer`` inactive the batch collapses to one coalesced
  timeout equal to ``count *`` the closed-form time — zero RNG draws,
* a transient link fault mid-collective retries with backoff and
  retrains the link (time grows) but books payload/encrypted bytes
  **exactly once per delivered chunk** — a retry costs time, never
  bytes (the double-count regression this file pins down),
* an exhausted retry budget raises :class:`FatalFault` with the fatal
  recovery in the injector ledger and the partial bytes still flushed
  exactly once into the metrics registry.
"""

import pytest

from repro import units
from repro.config import SystemConfig
from repro.faults import LINK, FatalFault, FaultPlan, RetryPolicy, SiteFaults
from repro.multigpu import (
    LinkSecurity,
    MultiGPUNode,
    ring_all_reduce,
    run_ring_all_reduce,
    wire_bytes,
)
from repro.profiler import Trace
from repro.sim import Simulator
from repro.tdx import GuestContext

SIZE = 8 * units.MiB


def _guest(plan: FaultPlan):
    sim = Simulator()
    config = SystemConfig.confidential().replace(faults=plan)
    trace = Trace(label="multigpu-faults")
    trace.bind_clock(lambda: sim.now)
    return sim, GuestContext(sim, config, trace=trace)


def _run(sim, gen):
    return sim.run(sim.process(gen))


def _counters(guest):
    metrics = guest.metrics
    return {
        name: metrics.counter(f"multigpu.{name}").value
        for name in ("collectives", "payload_bytes", "encrypted_bytes",
                     "link_retries")
    }


def test_fault_free_session_matches_closed_form_exactly():
    node = MultiGPUNode(num_gpus=4)
    sim, guest = _guest(FaultPlan.none())
    stats = _run(sim, run_ring_all_reduce(
        sim, node, SIZE, LinkSecurity.NAIVE, count=3, guest=guest))
    shape = ring_all_reduce(node, SIZE, LinkSecurity.NAIVE)
    assert sim.now == 3 * shape.time_ns
    assert stats.time_ns == 3 * shape.time_ns
    assert stats.retries == 0
    chunk = SIZE // 4
    steps = 2 * (4 - 1)
    assert stats.payload_bytes == 3 * steps * chunk
    assert stats.encrypted_bytes == 3 * steps * wire_bytes(
        node.link, chunk, LinkSecurity.NAIVE)
    counters = _counters(guest)
    assert counters["collectives"] == 3
    assert counters["payload_bytes"] == stats.payload_bytes
    assert counters["encrypted_bytes"] == stats.encrypted_bytes
    assert counters["link_retries"] == 0


def test_plaintext_links_book_zero_encrypted_bytes():
    node = MultiGPUNode(num_gpus=4)
    sim, guest = _guest(FaultPlan.none())
    stats = _run(sim, run_ring_all_reduce(
        sim, node, SIZE, LinkSecurity.NONE, guest=guest))
    assert stats.payload_bytes > 0
    assert stats.encrypted_bytes == 0
    assert _counters(guest)["encrypted_bytes"] == 0


def test_transient_link_fault_retries_without_double_counting_bytes():
    node = MultiGPUNode(num_gpus=4)
    plan = FaultPlan.from_mapping({LINK: SiteFaults(schedule=(2,))})
    sim, guest = _guest(plan)
    faulty = _run(sim, run_ring_all_reduce(
        sim, node, SIZE, LinkSecurity.NAIVE, count=2, guest=guest))

    clean_sim, clean_guest = _guest(FaultPlan.none())
    clean = _run(clean_sim, run_ring_all_reduce(
        clean_sim, node, SIZE, LinkSecurity.NAIVE, count=2,
        guest=clean_guest))

    # The retry costs time (wasted transfer + link retrain backoff) ...
    assert faulty.retries == 1
    assert faulty.time_ns > clean.time_ns
    # ... but never bytes: the ledger and the registry both match the
    # fault-free run exactly.
    assert faulty.payload_bytes == clean.payload_bytes
    assert faulty.encrypted_bytes == clean.encrypted_bytes
    assert _counters(guest)["payload_bytes"] == \
        _counters(clean_guest)["payload_bytes"]
    assert _counters(guest)["encrypted_bytes"] == \
        _counters(clean_guest)["encrypted_bytes"]
    assert _counters(guest)["link_retries"] == 1
    # The injector ledger saw exactly one transient recovery.
    assert guest.faults.injected_at(LINK) == 1


def test_retry_exhaustion_raises_fatal_and_flushes_once():
    node = MultiGPUNode(num_gpus=2)
    plan = FaultPlan.from_mapping({LINK: SiteFaults(rate=1.0)})
    sim, guest = _guest(plan)
    retry = RetryPolicy(max_attempts=2)
    with pytest.raises(FatalFault):
        _run(sim, run_ring_all_reduce(
            sim, node, SIZE, LinkSecurity.NAIVE, guest=guest, retry=retry))
    counters = _counters(guest)
    # No chunk was ever delivered: zero bytes, the one pre-fatal retry.
    assert counters["payload_bytes"] == 0
    assert counters["encrypted_bytes"] == 0
    assert counters["link_retries"] == 1
    assert guest.faults.injected_at(LINK) == 2
    assert guest.faults.fatal.get(LINK, 0) == 1


def test_fault_schedule_is_deterministic():
    node = MultiGPUNode(num_gpus=4)
    plan = FaultPlan.from_mapping({LINK: SiteFaults(rate=0.05)})

    def once():
        sim, guest = _guest(plan)
        stats = _run(sim, run_ring_all_reduce(
            sim, node, SIZE, LinkSecurity.NAIVE, count=8, guest=guest))
        return sim.now, stats.retries, stats.payload_bytes

    assert once() == once()


def test_inactive_site_entry_keeps_fast_path():
    # A plan that names the site at rate 0 is *inactive*: no draws, and
    # the elapsed time is byte-identical to the no-plan run (this is
    # what keeps `--fault-rate` uniform plans golden-safe).
    node = MultiGPUNode(num_gpus=4)
    plan = FaultPlan.from_mapping({LINK: SiteFaults(rate=0.0)})
    sim, guest = _guest(plan)
    _run(sim, run_ring_all_reduce(
        sim, node, SIZE, LinkSecurity.NAIVE, count=2, guest=guest))
    clean_sim, clean_guest = _guest(FaultPlan.none())
    _run(clean_sim, run_ring_all_reduce(
        clean_sim, node, SIZE, LinkSecurity.NAIVE, count=2,
        guest=clean_guest))
    assert sim.now == clean_sim.now
    assert guest.faults.total_injected == 0
