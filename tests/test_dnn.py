"""Tests for the CNN training simulation (Fig. 13 behaviours)."""

import pytest

from repro.config import SystemConfig
from repro.dnn import MODEL_NAMES, get, train


def test_model_zoo_complete():
    assert set(MODEL_NAMES) == {
        "vgg16",
        "resnet50",
        "mobilenetv2",
        "squeezenet",
        "attention92",
        "inceptionv4",
    }
    with pytest.raises(KeyError):
        get("alexnet")


def test_model_derived_quantities():
    model = get("vgg16")
    assert model.bwd_flops_per_image == 2 * model.fwd_flops_per_image
    assert model.step_launches > model.fwd_launches * 2


def test_invalid_precision_rejected():
    with pytest.raises(ValueError):
        train(get("vgg16"), 64, "int3")


def test_throughput_scales_with_batch():
    model = get("resnet50")
    small = train(model, 64, "fp32")
    large = train(model, 1024, "fp32")
    assert large.throughput_img_per_sec > small.throughput_img_per_sec


def test_cc_reduces_throughput():
    model = get("vgg16")
    base = train(model, 64, "fp32", SystemConfig.base())
    cc = train(model, 64, "fp32", SystemConfig.confidential())
    assert cc.throughput_img_per_sec < base.throughput_img_per_sec
    assert cc.epoch_time_sec > base.epoch_time_sec


def test_large_batch_shrinks_cc_gap():
    """Paper: batch 1024 cuts the average CC overhead to single digits."""
    model = get("inceptionv4")
    gap = {}
    for batch in (64, 1024):
        base = train(model, batch, "fp32", SystemConfig.base())
        cc = train(model, batch, "fp32", SystemConfig.confidential())
        gap[batch] = 1 - cc.throughput_img_per_sec / base.throughput_img_per_sec
    assert gap[1024] < gap[64]


def test_amp_hurts_small_batch_under_cc():
    """Paper: AMP at batch 64 lowers CC throughput (extra cast ops)."""
    model = get("mobilenetv2")
    cc = SystemConfig.confidential()
    fp32 = train(model, 64, "fp32", cc)
    amp = train(model, 64, "amp", cc)
    assert amp.throughput_img_per_sec < fp32.throughput_img_per_sec


def test_amp_helps_large_batch():
    model = get("attention92")
    cc = SystemConfig.confidential()
    fp32 = train(model, 1024, "fp32", cc)
    amp = train(model, 1024, "amp", cc)
    assert amp.throughput_img_per_sec > fp32.throughput_img_per_sec


def test_fp16_beats_amp_at_1024():
    """Paper: FP16 quantization further cuts training time at 1024."""
    cc = SystemConfig.confidential()
    for name in ("vgg16", "attention92"):
        amp = train(get(name), 1024, "amp", cc)
        fp16 = train(get(name), 1024, "fp16", cc)
        assert fp16.epoch_time_sec < amp.epoch_time_sec, name


def test_training_time_extrapolation():
    result = train(get("squeezenet"), 256, "fp32")
    assert result.training_time_sec(200) == pytest.approx(
        result.epoch_time_sec * 200
    )


def test_deterministic_given_config():
    a = train(get("vgg16"), 64, "fp32", SystemConfig.base())
    b = train(get("vgg16"), 64, "fp32", SystemConfig.base())
    assert a.step_time_ns == b.step_time_ns
