"""Fault-injection subsystem tests.

Covers the contract promised in ``repro.faults``:

* plan serialization and validation,
* seeded per-site determinism of the injector,
* the zero-overhead guarantee (inactive plan => bit-identical traces),
* determinism of full runs under an *active* plan,
* transparent recovery (results unchanged, only time differs),
* fatal faults as typed exceptions with every resource released,
* SPDM re-attestation and the genuine-failure-is-not-retried rule.
"""

import dataclasses

import pytest

from repro import units
from repro.config import CopyKind, SystemConfig
from repro.core.breakdown import breakdown
from repro.core.model import decompose
from repro.cuda import FatalCudaFault, Machine, run_app
from repro.faults import (
    BOUNCE_POOL,
    DMA,
    GCM_TAG,
    HYPERCALL,
    SPDM,
    FatalFault,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    SiteFaults,
)
from repro.tdx.spdm import SpdmError, attest_gpu
from repro.workloads.spec import WorkloadSpec


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _copy_spec() -> WorkloadSpec:
    """A small copy+launch workload (cleans itself up via spec reclaim)."""
    return WorkloadSpec(
        "faults-copy",
        [
            {"op": "malloc", "name": "A", "bytes": units.MiB},
            {"op": "malloc_host", "name": "hA", "bytes": units.MiB},
            {"op": "memcpy", "dst": "A", "src": "hA"},
            {"op": "launch", "kernel": "fk", "duration_us": 50},
            {"op": "memcpy", "dst": "hA", "src": "A"},
            {"op": "sync"},
        ],
    )


_PAYLOAD = bytes(range(256)) * 64  # 16 KiB of recognisable bytes


def _payload_app(rt):
    """Round-trip a real payload H2D then D2H; returns the bytes read back."""
    dev = yield from rt.malloc(units.MiB)
    src = yield from rt.host_alloc(units.MiB)
    dst = yield from rt.host_alloc(units.MiB)
    src.payload = _PAYLOAD
    yield from rt.memcpy(dev, src)
    yield from rt.memcpy(dst, dev)
    yield from rt.synchronize()
    result = dst.payload
    for buffer in (dev, src, dst):
        yield from rt.free(buffer)
    return result


def _cc(plan=None, **overrides) -> SystemConfig:
    config = SystemConfig.confidential(**overrides)
    if plan is not None:
        config = config.replace(faults=plan)
    return config


def _schedule(site, *indices, upto=None):
    if upto is not None:
        indices = tuple(range(upto))
    return FaultPlan.from_mapping({site: SiteFaults(schedule=tuple(indices))})


# ---------------------------------------------------------------------------
# Plan serialization and validation
# ---------------------------------------------------------------------------


def test_plan_json_round_trip():
    plan = FaultPlan.from_mapping(
        {
            GCM_TAG: SiteFaults(rate=0.01),
            SPDM: SiteFaults(schedule=(0, 2), max_faults=3),
        }
    )
    assert FaultPlan.from_json(plan.to_json()) == plan


def test_plan_load_from_file(tmp_path):
    path = tmp_path / "plan.json"
    plan = FaultPlan.uniform(0.05, sites=(DMA, HYPERCALL))
    path.write_text(plan.to_json())
    assert FaultPlan.load(str(path)) == plan


def test_plan_rejects_unknown_site():
    with pytest.raises(ValueError, match="unknown fault site"):
        FaultPlan.from_json('{"sites": {"bogus.site": {"rate": 0.5}}}')


def test_plan_rejects_bad_rate():
    with pytest.raises(ValueError, match="rate"):
        FaultPlan.from_mapping({DMA: SiteFaults(rate=1.5)}).validate()


def test_plan_rejects_negative_schedule():
    with pytest.raises(ValueError, match="schedule"):
        FaultPlan.from_mapping({DMA: SiteFaults(schedule=(-1,))}).validate()


def test_plan_rejects_malformed_json():
    with pytest.raises(ValueError):
        FaultPlan.from_json("not json at all")
    with pytest.raises(ValueError):
        FaultPlan.from_json('{"sites": 3}')


def test_plan_activity_flags():
    assert not FaultPlan.none().active
    assert not FaultPlan.uniform(0.0).active
    assert FaultPlan.uniform(0.1).active
    assert FaultPlan.from_mapping({SPDM: SiteFaults(schedule=(0,))}).active


def test_retry_backoff_is_exponential_and_capped():
    policy = RetryPolicy()
    assert policy.backoff_ns(1) == units.us(50)
    assert policy.backoff_ns(2) == units.us(100)
    assert policy.backoff_ns(3) == units.us(200)
    capped = RetryPolicy(backoff_cap_ns=units.us(120))
    assert capped.backoff_ns(3) == units.us(120)
    with pytest.raises(ValueError):
        policy.backoff_ns(0)


# ---------------------------------------------------------------------------
# Injector determinism
# ---------------------------------------------------------------------------


def test_injector_same_seed_same_draws():
    plan = FaultPlan.uniform(0.3, sites=(DMA,))
    outcomes = []
    for _ in range(2):
        injector = FaultInjector(plan, seed=1234)
        outcomes.append([injector.draw(DMA) is not None for _ in range(200)])
    assert outcomes[0] == outcomes[1]
    assert any(outcomes[0])  # at rate 0.3 over 200 draws some fire


def test_injector_sites_are_independent_substreams():
    plan = FaultPlan.uniform(0.3, sites=(DMA, GCM_TAG))
    interleaved = FaultInjector(plan, seed=7)
    dma_only = FaultInjector(plan, seed=7)
    mixed = []
    for _ in range(100):
        interleaved.draw(GCM_TAG)  # extra draws at another site...
        mixed.append(interleaved.draw(DMA) is not None)
    alone = [dma_only.draw(DMA) is not None for _ in range(100)]
    assert mixed == alone  # ...never perturb this one


def test_inactive_site_touches_no_rng():
    injector = FaultInjector(FaultPlan.uniform(0.5, sites=(DMA,)), seed=3)
    assert injector.draw(GCM_TAG) is None
    assert injector.draw(SPDM) is None
    assert injector.occurrences == {}  # inactive visits are not even counted
    assert injector._rngs == {}


def test_schedule_and_max_faults():
    plan = FaultPlan.from_mapping({DMA: SiteFaults(schedule=(0, 2))})
    injector = FaultInjector(plan, seed=0)
    fired = [injector.draw(DMA) is not None for _ in range(4)]
    assert fired == [True, False, True, False]

    capped = FaultInjector(
        FaultPlan.from_mapping(
            {DMA: SiteFaults(schedule=(0, 1, 2), max_faults=1)}
        ),
        seed=0,
    )
    assert [capped.draw(DMA) is not None for _ in range(3)] == [
        True,
        False,
        False,
    ]
    assert capped.injected_at(DMA) == 1


# ---------------------------------------------------------------------------
# Zero-overhead guarantee and determinism regression
# ---------------------------------------------------------------------------


def test_inactive_plans_are_bit_identical_to_no_plan():
    app = _copy_spec().app()
    reference, _ = run_app(app, _cc())
    for plan in (
        FaultPlan.none(),
        FaultPlan.uniform(0.0),
        FaultPlan.from_mapping({DMA: SiteFaults(rate=0.0)}),
    ):
        trace, _ = run_app(app, _cc(plan))
        assert trace.to_chrome_trace() == reference.to_chrome_trace()


def test_active_plan_runs_are_deterministic():
    config = _cc(FaultPlan.uniform(0.05))
    machines = []
    for _ in range(2):
        machine = Machine(config)
        machine.run(_copy_spec().app())
        machines.append(machine)
    first, second = machines
    assert first.trace.to_chrome_trace() == second.trace.to_chrome_trace()
    assert first.elapsed_ns == second.elapsed_ns
    assert first.guest.faults.records == second.guest.faults.records


# ---------------------------------------------------------------------------
# Transparent recovery
# ---------------------------------------------------------------------------


def test_gcm_fault_is_recovered_transparently():
    clean_trace, clean_result = run_app(_payload_app, _cc())
    plan = _schedule(GCM_TAG, 0)
    faulted_trace, faulted_result = run_app(_payload_app, _cc(plan))

    # The application observes identical results...
    assert clean_result == _PAYLOAD
    assert faulted_result == clean_result
    # ...only time differs, and the difference is booked as recovery.
    assert faulted_trace.span_ns() > clean_trace.span_ns()
    assert faulted_trace.recovery_ns() > 0
    assert clean_trace.recovery_ns() == 0
    actions = {e.attrs.get("action") for e in faulted_trace.recoveries()}
    assert "retry" in actions
    # The successful attempt still emits the ordinary memcpy events.
    assert len(faulted_trace.memcpys()) == len(clean_trace.memcpys())


def test_recovery_shows_up_in_breakdown_and_model():
    trace, _ = run_app(_payload_app, _cc(_schedule(GCM_TAG, 0)))
    parts = breakdown(trace)
    assert parts.by_category_ns["recovery"] > 0
    measured = decompose(trace)
    assert measured.t_recovery_ns > 0
    assert "recovery" in measured.summary()

    clean, _ = run_app(_payload_app, _cc())
    assert breakdown(clean).by_category_ns["recovery"] == 0
    assert decompose(clean).t_recovery_ns == 0


def test_bounce_exhaustion_degrades_but_completes():
    plan = _schedule(BOUNCE_POOL, 0)
    clean_trace, _ = run_app(_payload_app, _cc())
    trace, result = run_app(_payload_app, _cc(plan))
    assert result == _PAYLOAD  # the copy still completes, chunked
    actions = [e.attrs.get("action") for e in trace.recoveries()]
    assert "degraded" in actions
    # Chunked staging pays extra map hypercalls: strictly slower.
    assert trace.span_ns() > clean_trace.span_ns()


def test_hypercall_timeout_is_retried():
    # The first launch's CC setup path issues real hypercalls.
    plan = _schedule(HYPERCALL, 0)
    clean_trace, _ = run_app(_copy_spec().app(), _cc())
    machine = Machine(_cc(plan))
    machine.run(_copy_spec().app())
    assert machine.guest.faults.retries.get(HYPERCALL) == 1
    assert machine.trace.span_ns() > clean_trace.span_ns()


# ---------------------------------------------------------------------------
# Fatal faults: typed exceptions, resources verifiably released
# ---------------------------------------------------------------------------


def _assert_machine_clean(machine):
    assert machine.guest.bounce.used_bytes == 0
    assert machine.gpu.hbm.used_bytes == 0
    assert machine.guest.memory.heap.used_bytes == 0
    for kind in (CopyKind.H2D, CopyKind.D2H):
        assert machine.gpu.copy_engine(kind).in_use == 0
    assert machine.gpu.launch_credits.in_use == 0
    machine.gpu.hbm.check_invariants()
    machine.guest.memory.heap.check_invariants()


def test_copy_fault_exhaustion_is_fatal_and_leak_free():
    plan = _schedule(GCM_TAG, upto=8)  # every staging attempt fails
    machine = Machine(_cc(plan))
    with pytest.raises(FatalCudaFault) as excinfo:
        machine.run(_copy_spec().app())
    assert excinfo.value.site == GCM_TAG
    assert excinfo.value.attempts == machine.config.retry.max_attempts
    assert machine.guest.faults.fatal.get(GCM_TAG) == 1
    _assert_machine_clean(machine)
    # The fatal path is also booked on the recovery timeline.
    assert any(
        e.attrs.get("action") == "fatal" for e in machine.trace.recoveries()
    )


def test_dma_fault_exhaustion_without_cc_is_fatal():
    plan = _schedule(DMA, upto=8)
    machine = Machine(SystemConfig.base().replace(faults=plan))
    with pytest.raises(FatalFault) as excinfo:
        machine.run(_copy_spec().app())
    assert excinfo.value.site == DMA
    _assert_machine_clean(machine)


def test_hypercall_fault_exhaustion_releases_launch_credit():
    plan = _schedule(HYPERCALL, upto=16)
    machine = Machine(_cc(plan))
    spec = WorkloadSpec(
        "launch-only",
        [{"op": "launch", "kernel": "lk", "duration_us": 10}, {"op": "sync"}],
    )
    with pytest.raises(FatalFault) as excinfo:
        machine.run(spec.app())
    assert excinfo.value.site == HYPERCALL
    _assert_machine_clean(machine)


def test_async_copy_fatal_fault_surfaces_at_synchronize():
    plan = _schedule(DMA, upto=8)

    def app(rt):
        dev = yield from rt.malloc(256 * units.KiB)
        host = yield from rt.malloc_host(256 * units.KiB)
        stream = rt.create_stream()
        try:
            yield from rt.memcpy_async(dev, host, stream)
            yield from rt.stream_synchronize(stream)
        finally:
            rt.reclaim(dev)
            rt.reclaim(host)

    machine = Machine(SystemConfig.base().replace(faults=plan))
    with pytest.raises(FatalFault) as excinfo:
        machine.run(app)
    assert excinfo.value.site == DMA
    _assert_machine_clean(machine)


def test_machine_is_reusable_after_fatal_fault():
    # Exhaust retries on the first copy only; the site's schedule is
    # spent afterwards, so a second run on a fresh machine with the
    # same plan minus the schedule succeeds — and a brand-new machine
    # with an empty plan reproduces the clean trace exactly.
    plan = _schedule(GCM_TAG, upto=8)
    machine = Machine(_cc(plan))
    with pytest.raises(FatalCudaFault):
        machine.run(_copy_spec().app())
    _assert_machine_clean(machine)

    clean = Machine(_cc())
    result = clean.run(_copy_spec().app())
    assert result is None
    _assert_machine_clean(clean)


# ---------------------------------------------------------------------------
# SPDM attestation recovery
# ---------------------------------------------------------------------------


def _attest(config, **kwargs):
    machine = Machine(config)
    process = machine.sim.process(
        attest_gpu(machine.sim, machine.guest, machine.config, **kwargs)
    )
    session = machine.sim.run(until=process)
    return machine, session


def test_spdm_corruption_triggers_reattestation():
    clean_machine, clean_session = _attest(_cc())
    machine, session = _attest(_cc(_schedule(SPDM, 0)))
    # Transcript binding catches the corruption; the retry re-runs the
    # whole flow and lands on the same session key as a clean run.
    assert session.session_key == clean_session.session_key
    assert machine.guest.faults.retries.get(SPDM) == 1
    assert any(
        e.attrs.get("action") == "re-attest" for e in machine.trace.recoveries()
    )
    assert machine.elapsed_ns > clean_machine.elapsed_ns


def test_spdm_persistent_corruption_is_fatal():
    machine = Machine(_cc(_schedule(SPDM, upto=64)))
    process = machine.sim.process(
        attest_gpu(machine.sim, machine.guest, machine.config)
    )
    with pytest.raises(FatalFault) as excinfo:
        machine.sim.run(until=process)
    assert excinfo.value.site == SPDM
    assert machine.guest.faults.fatal.get(SPDM) == 1


def test_spdm_genuine_policy_failure_is_not_retried():
    # A measurement that violates policy is NOT an injected fault and
    # must surface immediately — even with an active plan elsewhere.
    machine = Machine(_cc(FaultPlan.uniform(0.5, sites=(DMA,))))
    process = machine.sim.process(
        attest_gpu(
            machine.sim,
            machine.guest,
            machine.config,
            expected_measurement=b"\x00" * 32,
        )
    )
    with pytest.raises(SpdmError, match="policy"):
        machine.sim.run(until=process)
    assert machine.guest.faults.retries == {}


def test_retry_policy_validates_at_construction():
    # An invalid policy must fail when built (e.g. from CLI flags), not
    # deep inside a recovery loop.
    with pytest.raises(ValueError, match="backoff_factor"):
        RetryPolicy(backoff_factor=0.5)
    with pytest.raises(ValueError, match="max_attempts"):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError, match="non-negative"):
        RetryPolicy(backoff_base_ns=-1)
    with pytest.raises(ValueError):
        dataclasses.replace(RetryPolicy(), backoff_factor=0.0)
