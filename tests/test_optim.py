"""Tests for the fusion/overlap optimization planners (Sec. VII-A)."""

from repro import units
from repro.config import SystemConfig
from repro.optim import (
    best_fusion_level,
    compute_to_io_ratio,
    graph_fusion_time,
    sweep_fusion_levels,
    sweep_graph_batches,
    sweep_streams,
)


def test_fully_fused_is_suboptimal():
    """Observation 7: the best fusion level is neither 1 nor max."""
    plan = sweep_fusion_levels(
        SystemConfig.confidential(),
        total_ket_ns=units.ms(20),
        launch_counts=(1, 4, 16, 64, 256),
    )
    assert plan.best_time_ns <= plan.fully_fused_time_ns
    assert plan.best_level in plan.levels


def test_fusion_reduces_cc_time_vs_many_launches():
    # Launch-bound regime: 2 ms of total KET over 256 launches means
    # per-kernel KET ~ KLO, so fusing launches shortens the run.
    plan = sweep_fusion_levels(
        SystemConfig.confidential(),
        total_ket_ns=units.us(500),
        launch_counts=(4, 256),
    )
    assert plan.levels[4] < plan.levels[256]


def test_best_fusion_level_consistency():
    counts = (1, 8, 64)
    level = best_fusion_level(
        SystemConfig.base(), total_ket_ns=units.ms(10), launch_counts=counts
    )
    assert level in counts


def test_graph_fusion_beats_individual_launches_under_cc():
    config = SystemConfig.confidential()
    individual = graph_fusion_time(
        config, num_launches=128, per_kernel_ns=units.us(5), graph_batch=1
    )
    batched = graph_fusion_time(
        config, num_launches=128, per_kernel_ns=units.us(5), graph_batch=32
    )
    assert batched < individual


def test_graph_batch_sweep_has_interior_optimum_or_monotone():
    times = sweep_graph_batches(
        SystemConfig.confidential(),
        num_launches=128,
        per_kernel_ns=units.us(5),
        batches=(1, 8, 64),
    )
    assert times[8] <= times[1]


def test_overlap_alpha_grows_with_streams():
    plan = sweep_streams(
        SystemConfig.base(),
        total_bytes=256 * units.MB,
        ket_ns=units.ms(5),
        stream_counts=(1, 8),
    )
    assert plan.alphas[8] > plan.alphas[1]
    assert plan.best_streams == 8


def test_overlap_alpha_lower_under_cc():
    kwargs = dict(
        total_bytes=256 * units.MB, ket_ns=units.ms(2), stream_counts=(8,)
    )
    base = sweep_streams(SystemConfig.base(), **kwargs)
    cc = sweep_streams(SystemConfig.confidential(), **kwargs)
    assert cc.alphas[8] < base.alphas[8]


def test_compute_to_io_ratio_lower_under_cc():
    base = compute_to_io_ratio(SystemConfig.base(), 256 * units.MB, units.ms(50))
    cc = compute_to_io_ratio(SystemConfig.confidential(), 256 * units.MB, units.ms(50))
    # CC copies take longer, so the same KET buys a lower ratio.
    assert cc < base
