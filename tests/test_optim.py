"""Tests for the fusion/overlap optimization planners (Sec. VII-A)."""

from repro import units
from repro.config import SystemConfig
from repro.optim import (
    best_fusion_level,
    compute_to_io_ratio,
    graph_fusion_time,
    sweep_fusion_levels,
    sweep_graph_batches,
    sweep_streams,
)


def test_fully_fused_is_suboptimal():
    """Observation 7: the best fusion level is neither 1 nor max."""
    plan = sweep_fusion_levels(
        SystemConfig.confidential(),
        total_ket_ns=units.ms(20),
        launch_counts=(1, 4, 16, 64, 256),
    )
    assert plan.best_time_ns <= plan.fully_fused_time_ns
    assert plan.best_level in plan.levels


def test_fusion_reduces_cc_time_vs_many_launches():
    # Launch-bound regime: 2 ms of total KET over 256 launches means
    # per-kernel KET ~ KLO, so fusing launches shortens the run.
    plan = sweep_fusion_levels(
        SystemConfig.confidential(),
        total_ket_ns=units.us(500),
        launch_counts=(4, 256),
    )
    assert plan.levels[4] < plan.levels[256]


def test_best_fusion_level_consistency():
    counts = (1, 8, 64)
    level = best_fusion_level(
        SystemConfig.base(), total_ket_ns=units.ms(10), launch_counts=counts
    )
    assert level in counts


def test_graph_fusion_beats_individual_launches_under_cc():
    config = SystemConfig.confidential()
    individual = graph_fusion_time(
        config, num_launches=128, per_kernel_ns=units.us(5), graph_batch=1
    )
    batched = graph_fusion_time(
        config, num_launches=128, per_kernel_ns=units.us(5), graph_batch=32
    )
    assert batched < individual


def test_graph_batch_sweep_has_interior_optimum_or_monotone():
    times = sweep_graph_batches(
        SystemConfig.confidential(),
        num_launches=128,
        per_kernel_ns=units.us(5),
        batches=(1, 8, 64),
    )
    assert times[8] <= times[1]


def test_overlap_alpha_grows_with_streams():
    plan = sweep_streams(
        SystemConfig.base(),
        total_bytes=256 * units.MB,
        ket_ns=units.ms(5),
        stream_counts=(1, 8),
    )
    assert plan.alphas[8] > plan.alphas[1]
    assert plan.best_streams == 8


def test_overlap_alpha_lower_under_cc():
    kwargs = dict(
        total_bytes=256 * units.MB, ket_ns=units.ms(2), stream_counts=(8,)
    )
    base = sweep_streams(SystemConfig.base(), **kwargs)
    cc = sweep_streams(SystemConfig.confidential(), **kwargs)
    assert cc.alphas[8] < base.alphas[8]


def test_compute_to_io_ratio_lower_under_cc():
    base = compute_to_io_ratio(SystemConfig.base(), 256 * units.MB, units.ms(50))
    cc = compute_to_io_ratio(SystemConfig.confidential(), 256 * units.MB, units.ms(50))
    # CC copies take longer, so the same KET buys a lower ratio.
    assert cc < base


# ---------------------------------------------------------------------------
# input validation (sweeps must reject degenerate axes up front)


import math

import pytest


@pytest.mark.parametrize("kwargs", [
    dict(total_ket_ns=0),
    dict(total_ket_ns=-5),
    dict(total_ket_ns=float("nan")),
    dict(total_ket_ns=float("inf")),
    dict(launch_counts=()),
    dict(launch_counts=(0,)),
    dict(launch_counts=(4, -1)),
    dict(launch_counts=(2.5,)),
])
def test_sweep_fusion_levels_rejects_bad_inputs(kwargs):
    with pytest.raises(ValueError):
        sweep_fusion_levels(SystemConfig.base(), **kwargs)


@pytest.mark.parametrize("kwargs", [
    dict(per_kernel_ns=0),
    dict(per_kernel_ns=float("nan")),
    dict(num_launches=0),
    dict(graph_batch=-2),
])
def test_graph_fusion_time_rejects_bad_inputs(kwargs):
    with pytest.raises(ValueError):
        graph_fusion_time(SystemConfig.base(), **kwargs)


@pytest.mark.parametrize("kwargs", [
    dict(batches=()),
    dict(batches=(0, 4)),
    dict(per_kernel_ns=-1),
    dict(num_launches=-3),
])
def test_sweep_graph_batches_rejects_bad_inputs(kwargs):
    with pytest.raises(ValueError):
        sweep_graph_batches(SystemConfig.base(), **kwargs)


@pytest.mark.parametrize("kwargs", [
    dict(ket_ns=0),
    dict(ket_ns=float("inf")),
    dict(total_bytes=0),
    dict(stream_counts=()),
    dict(stream_counts=(1, 0)),
])
def test_sweep_streams_rejects_bad_inputs(kwargs):
    with pytest.raises(ValueError):
        sweep_streams(SystemConfig.base(), **kwargs)


def test_validation_error_messages_name_the_argument():
    with pytest.raises(ValueError, match="total_ket_ns"):
        sweep_fusion_levels(SystemConfig.base(), total_ket_ns=math.nan)
    with pytest.raises(ValueError, match="stream_counts"):
        sweep_streams(SystemConfig.base(), stream_counts=(-1,))
