"""Property-based tests on the transfer cost model: orderings the
mechanisms must preserve for every size and memory kind."""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.config import CopyKind, MemoryKind, SystemConfig
from repro.cuda.transfers import plan_copy
from repro.sim import Simulator
from repro.tdx import GuestContext

BASE = SystemConfig.base()
CC = SystemConfig.confidential()
TEEIO = CC.replace(tdx=dataclasses.replace(CC.tdx, teeio=True))
GUESTS = {
    id(config): GuestContext(Simulator(), config)
    for config in (BASE, CC, TEEIO)
}


def _plan(config, kind, size, memory, cold=True):
    return plan_copy(config, GUESTS[id(config)], kind, size, memory, cold)


sizes = st.integers(min_value=1, max_value=2 * units.GiB)
kinds = st.sampled_from([CopyKind.H2D, CopyKind.D2H])
memories = st.sampled_from([MemoryKind.PAGEABLE, MemoryKind.PINNED])


@settings(max_examples=80, deadline=None)
@given(size=sizes, kind=kinds, memory=memories)
def test_cc_never_faster_than_base(size, kind, memory):
    base = _plan(BASE, kind, size, memory).total_ns
    cc = _plan(CC, kind, size, memory).total_ns
    assert cc >= base


@settings(max_examples=80, deadline=None)
@given(size=sizes, kind=kinds, memory=memories)
def test_cold_never_faster_than_warm(size, kind, memory):
    cold = _plan(CC, kind, size, memory, cold=True).total_ns
    warm = _plan(CC, kind, size, memory, cold=False).total_ns
    assert cold >= warm


@settings(max_examples=60, deadline=None)
@given(
    small=st.integers(min_value=1, max_value=units.GiB),
    delta=st.integers(min_value=1, max_value=units.GiB),
    kind=kinds,
    memory=memories,
)
def test_monotone_in_size(small, delta, kind, memory):
    for config in (BASE, CC, TEEIO):
        t_small = _plan(config, kind, small, memory, cold=False).total_ns
        t_large = _plan(config, kind, small + delta, memory, cold=False).total_ns
        assert t_large >= t_small


@settings(max_examples=60, deadline=None)
@given(size=sizes, kind=kinds, memory=memories)
def test_teeio_between_base_and_cc(size, kind, memory):
    base = _plan(BASE, kind, size, memory).total_ns
    teeio = _plan(TEEIO, kind, size, memory).total_ns
    cc = _plan(CC, kind, size, memory).total_ns
    assert base <= teeio <= cc


@settings(max_examples=60, deadline=None)
@given(size=st.integers(min_value=4096, max_value=2 * units.GiB))
def test_base_pinned_never_slower_than_pageable(size):
    pinned = _plan(BASE, CopyKind.H2D, size, MemoryKind.PINNED).total_ns
    pageable = _plan(BASE, CopyKind.H2D, size, MemoryKind.PAGEABLE).total_ns
    assert pinned <= pageable


@settings(max_examples=40, deadline=None)
@given(size=sizes, kind=kinds, memory=memories)
def test_plan_parts_consistent(size, kind, memory):
    plan = _plan(CC, kind, size, memory)
    assert plan.total_ns >= plan.setup_ns
    assert plan.total_ns >= plan.dma_ns
    assert plan.cpu_ns >= 0 and plan.hypercalls >= 0


@settings(max_examples=40, deadline=None)
@given(size=sizes)
def test_d2d_mode_independent(size):
    base = plan_copy(BASE, GUESTS[id(BASE)], CopyKind.D2D, size, MemoryKind.DEVICE)
    cc = plan_copy(CC, GUESTS[id(CC)], CopyKind.D2D, size, MemoryKind.DEVICE)
    assert base.total_ns == cc.total_ns
