"""Tests for repro.serve.arrivals: determinism, substream isolation,
process shapes, and digest stability across processes."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro import units
from repro.serve import (
    TRACES,
    ArrivalError,
    TenantSpec,
    default_tenants,
    generate_arrivals,
    stream_digest,
    tenant_rng,
)

DURATION = 2 * units.NS_PER_SEC


def _tenant(name="t0", rate=8.0, trace="chat", process="poisson"):
    return TenantSpec(name=name, rate_rps=rate, trace=trace, process=process)


def test_arrivals_sorted_and_ids_sequential():
    reqs = generate_arrivals([_tenant(), _tenant("t1", trace="code")],
                             DURATION, seed=42)
    assert reqs, "expected at least one arrival at 8 rps over 2 s"
    times = [r.arrival_ns for r in reqs]
    assert times == sorted(times)
    assert [r.req_id for r in reqs] == list(range(len(reqs)))
    assert all(0 <= r.arrival_ns < DURATION for r in reqs)


def test_same_seed_same_stream():
    tenants = default_tenants(16.0, 2)
    first = generate_arrivals(tenants, DURATION, seed=42)
    second = generate_arrivals(tenants, DURATION, seed=42)
    assert stream_digest(first) == stream_digest(second)
    assert [(r.tenant, r.arrival_ns, r.prompt_tokens, r.gen_tokens)
            for r in first] == \
           [(r.tenant, r.arrival_ns, r.prompt_tokens, r.gen_tokens)
            for r in second]


def test_different_seed_different_stream():
    tenants = default_tenants(16.0, 2)
    assert stream_digest(generate_arrivals(tenants, DURATION, seed=42)) != \
        stream_digest(generate_arrivals(tenants, DURATION, seed=43))


def test_substreams_isolated_per_tenant():
    """Adding a tenant must not perturb another tenant's stream."""
    alone = generate_arrivals([_tenant("t0")], DURATION, seed=42)
    together = generate_arrivals([_tenant("t0"), _tenant("t1")],
                                 DURATION, seed=42)
    t0_alone = [(r.arrival_ns, r.prompt_tokens, r.gen_tokens)
                for r in alone if r.tenant == "t0"]
    t0_together = [(r.arrival_ns, r.prompt_tokens, r.gen_tokens)
                   for r in together if r.tenant == "t0"]
    assert t0_alone == t0_together


def test_tenant_rng_differs_by_name_and_seed():
    a = tenant_rng(42, "t0").integers(0, 2**31, size=4).tolist()
    b = tenant_rng(42, "t1").integers(0, 2**31, size=4).tolist()
    c = tenant_rng(43, "t0").integers(0, 2**31, size=4).tolist()
    assert a != b and a != c


def test_gamma_burstier_than_poisson():
    """Gamma (CV > 1) interarrivals have a higher squared coefficient
    of variation than exponential ones at the same mean rate."""

    def cv2(process):
        reqs = generate_arrivals(
            [_tenant(rate=64.0, process=process)],
            30 * units.NS_PER_SEC, seed=42)
        times = [r.arrival_ns for r in reqs]
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean = sum(gaps) / len(gaps)
        var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        return var / mean**2

    assert cv2("gamma") > 1.5 * cv2("poisson")


def test_length_trace_bounds():
    trace = TRACES["code"]
    rng = tenant_rng(7, "bounds")
    for _ in range(200):
        prompt, gen = trace.sample(rng)
        assert 1 <= prompt <= trace.prompt_max
        assert 1 <= gen <= trace.gen_max


def test_default_tenants_split_rate():
    tenants = default_tenants(24.0, 3)
    assert len(tenants) == 3
    assert sum(t.rate_rps for t in tenants) == pytest.approx(24.0)
    assert len({t.name for t in tenants}) == 3


def test_validation_errors():
    with pytest.raises(ArrivalError, match="rate"):
        TenantSpec(name="t", rate_rps=0.0, trace="chat").validate()
    with pytest.raises(ArrivalError, match="trace"):
        TenantSpec(name="t", rate_rps=1.0, trace="nope").validate()
    with pytest.raises(ArrivalError, match="process"):
        TenantSpec(name="t", rate_rps=1.0, trace="chat",
                   process="weird").validate()
    with pytest.raises(ArrivalError, match="burstiness"):
        TenantSpec(name="t", rate_rps=1.0, trace="chat",
                   process="gamma", burstiness=1.0).validate()
    with pytest.raises(ArrivalError, match="duplicate"):
        generate_arrivals([_tenant("t0"), _tenant("t0")], DURATION, seed=1)
    with pytest.raises(ArrivalError, match="duration"):
        generate_arrivals([_tenant()], 0, seed=1)


def test_cross_process_determinism():
    """The arrival stream digest is stable across interpreter runs."""
    snippet = (
        "from repro import units\n"
        "from repro.serve import default_tenants, generate_arrivals, "
        "stream_digest\n"
        "reqs = generate_arrivals(default_tenants(8.0, 2), "
        "2 * units.NS_PER_SEC, seed=42)\n"
        "print(stream_digest(reqs))\n"
    )
    src = str(Path(__file__).resolve().parent.parent / "src")
    digests = set()
    for _ in range(2):
        out = subprocess.run(
            [sys.executable, "-c", snippet],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": src, "PYTHONHASHSEED": "random"},
        )
        digests.add(out.stdout.strip())
    local = stream_digest(
        generate_arrivals(default_tenants(8.0, 2), DURATION, seed=42))
    assert digests == {local}
