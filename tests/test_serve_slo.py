"""Regression tests for ``RequestOutcome.first_token_ns: Optional[int]``.

A request whose first token genuinely lands at sim-time 0 must be
distinguishable from one that never produced a token at all — the old
``first_token_ns=0`` sentinel conflated the two."""

from repro import units
from repro.obs.metrics import MetricsRegistry
from repro.serve.slo import (
    RequestOutcome,
    SLOTargets,
    SLOTracker,
    build_report,
)


def _outcome(**overrides) -> RequestOutcome:
    base = dict(
        req_id=0,
        tenant="tenant-a",
        arrival_ns=0,
        first_token_ns=10_000,
        finish_ns=50_000,
        prompt_tokens=64,
        gen_tokens=8,
    )
    base.update(overrides)
    return RequestOutcome(**base)


def test_first_token_at_time_zero_is_not_never_started():
    at_zero = _outcome(first_token_ns=0)
    never = _outcome(
        first_token_ns=None, status="shed", cause="ttft_timeout"
    )
    assert at_zero.ttft_ns == 0
    assert never.ttft_ns is None
    # TTFT of exactly zero attains any positive target; None never does.
    targets = SLOTargets(ttft_ms=1.0, tpot_ms=1000.0)
    assert at_zero.meets(targets)
    assert not never.meets(targets)


def test_never_started_request_has_no_latency_metrics():
    never = _outcome(first_token_ns=None, status="failed", cause="dma")
    assert never.ttft_ns is None
    assert never.tpot_ns == 0.0
    assert never.e2e_ns == never.finish_ns - never.arrival_ns


def test_tracker_ignores_latency_of_non_completed_outcomes():
    metrics = MetricsRegistry()
    metrics.bind_clock(lambda: 0)
    tracker = SLOTracker(metrics)
    tracker.observe(_outcome())
    tracker.observe(
        _outcome(req_id=1, first_token_ns=None, status="shed",
                 cause="pushback")
    )
    # Only the completed request enters the TTFT histogram.
    assert len(metrics.histogram("serve.ttft_ms").values) == 1
    assert metrics.counter("serve.shed").value == 1


def test_build_report_with_mixed_optional_first_tokens():
    outcomes = [
        _outcome(req_id=0),
        _outcome(req_id=1, first_token_ns=0, arrival_ns=0),
        _outcome(req_id=2, first_token_ns=None, status="shed",
                 cause="deadline"),
    ]
    report = build_report(
        outcomes,
        rejected=[],
        duration_ns=units.NS_PER_SEC,
        targets=SLOTargets(),
    )
    assert report["completed"] == 2
    assert report["shed"] == 1
    assert report["shed_causes"] == {"deadline": 1}
    # The report's TTFT block is over completed requests only, so the
    # None first token never reaches the percentile math.
    assert report["ttft_ms"]["p99"] >= 0.0


def test_request_outcome_is_hashable_with_none_first_token():
    # frozen dataclass: None must not break identity/equality semantics
    a = _outcome(first_token_ns=None, status="failed")
    b = _outcome(first_token_ns=None, status="failed")
    assert a == b
    assert hash(a) == hash(b)
