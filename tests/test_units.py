"""Unit tests for time/size unit helpers."""

import pytest

from repro import units


def test_time_conversions_roundtrip():
    assert units.us(1) == 1_000
    assert units.ms(1) == 1_000_000
    assert units.sec(1) == 1_000_000_000
    assert units.to_us(units.us(12.5)) == pytest.approx(12.5)
    assert units.to_ms(units.ms(3)) == pytest.approx(3.0)
    assert units.to_sec(units.sec(2)) == pytest.approx(2.0)


def test_transfer_time_matches_bandwidth():
    # 1 GB at 1 GB/s takes one second.
    t = units.transfer_time_ns(units.GB, 1.0 * units.GB)
    assert t == units.sec(1)


def test_transfer_time_minimum_one_ns():
    assert units.transfer_time_ns(1, 1e18) == 1


def test_transfer_time_zero_bytes():
    assert units.transfer_time_ns(0, 1e9) == 0


def test_transfer_time_rejects_nonpositive_bandwidth():
    with pytest.raises(ValueError):
        units.transfer_time_ns(100, 0)


def test_bandwidth_computation():
    assert units.bandwidth_gb_per_sec(units.GB, units.sec(1)) == pytest.approx(1.0)
    assert units.bandwidth_gb_per_sec(0, 0) == 0.0


def test_pages_rounds_up():
    assert units.pages(0, 4096) == 0
    assert units.pages(1, 4096) == 1
    assert units.pages(4096, 4096) == 1
    assert units.pages(4097, 4096) == 2


def test_transfer_time_integer_precision_above_2_53():
    # 10 GB at 3 B/s: size * NS_PER_SEC = 1e19 > 2**53, where the old
    # float expression lost integer-ns precision (it returned
    # ...3333504 instead of the exact ...3333333).
    exact = units.transfer_time_ns(10**10, 3.0)
    assert exact == 3_333_333_333_333_333_333
    assert exact != int(round(10**10 / 3.0 * units.NS_PER_SEC))


def test_transfer_time_exact_at_large_power_of_two():
    # Exactly divisible cases stay exact however large the product.
    assert units.transfer_time_ns(2**60, 2.0) == 2**59 * units.NS_PER_SEC


def test_transfer_time_integer_bandwidth():
    assert units.transfer_time_ns(units.GB, units.GB) == units.sec(1)


def test_transfer_time_half_rounding_matches_round():
    # 3 bytes at 2e9 B/s = 1.5 ns -> round-half-to-even -> 2 ns.
    assert units.transfer_time_ns(3, 2 * units.GB) == 2
    # 1 byte at 2e9 B/s = 0.5 ns -> 0, clamped to the 1 ns floor.
    assert units.transfer_time_ns(1, 2 * units.GB) == 1


def test_transfer_time_rejects_non_finite_bandwidth():
    with pytest.raises(ValueError):
        units.transfer_time_ns(100, float("inf"))
    with pytest.raises(ValueError):
        units.transfer_time_ns(100, float("nan"))
