"""Tests for the tolerance-aware payload differ (repro.check.differ)."""

import math

from repro.check.differ import (
    PayloadDiff,
    Tolerance,
    diff_payloads,
    render_report,
)

# ---------------------------------------------------------------------------
# Tolerance.numbers_equal


def test_exact_and_within_band_numbers_are_equal():
    tol = Tolerance(rel=1e-9, abs=1e-12)
    assert tol.numbers_equal(1.0, 1.0)
    assert tol.numbers_equal(1.0, 1.0 + 1e-13)  # inside abs band
    assert tol.numbers_equal(1e12, 1e12 * (1 + 1e-10))  # inside rel band


def test_numbers_outside_both_bands_differ():
    tol = Tolerance(rel=1e-9, abs=1e-12)
    assert not tol.numbers_equal(1.0, 1.0001)
    assert not tol.numbers_equal(0.0, 1.0)


def test_zero_golden_uses_absolute_band():
    tol = Tolerance(rel=1e-9, abs=1e-12)
    assert tol.numbers_equal(0.0, 1e-15)
    assert not tol.numbers_equal(0.0, 1e-6)


def test_nan_equals_nan_but_not_numbers():
    tol = Tolerance()
    assert tol.numbers_equal(math.nan, math.nan)
    assert not tol.numbers_equal(math.nan, 1.0)
    assert not tol.numbers_equal(1.0, math.nan)


def test_infinities_compare_exactly():
    tol = Tolerance()
    assert tol.numbers_equal(math.inf, math.inf)
    assert not tol.numbers_equal(math.inf, -math.inf)
    assert not tol.numbers_equal(math.inf, 1e308)


def test_wide_band_accepts_drift():
    assert Tolerance(rel=0.5).numbers_equal(10.0, 14.0)
    assert not Tolerance(rel=0.5).numbers_equal(10.0, 21.0)


# ---------------------------------------------------------------------------
# diff_payloads


PAYLOAD = {
    "figure_id": "fig_x",
    "rows": [["app", 1, 2.5], ["other", 3, 4.0]],
    "notes": ["a note"],
}


def test_identical_payloads_are_clean():
    assert diff_payloads(PAYLOAD, {**PAYLOAD}) == []


def test_value_drift_reports_json_path():
    current = {**PAYLOAD, "rows": [["app", 1, 2.6], ["other", 3, 4.0]]}
    diffs = diff_payloads(PAYLOAD, current)
    assert len(diffs) == 1
    assert diffs[0].path == "$.rows[0][2]"
    assert diffs[0].kind == "value"
    assert diffs[0].golden == 2.5 and diffs[0].current == 2.6


def test_drift_within_tolerance_is_clean():
    current = {**PAYLOAD, "rows": [["app", 1, 2.5 * (1 + 1e-12)], ["other", 3, 4.0]]}
    assert diff_payloads(PAYLOAD, current) == []
    assert diff_payloads(PAYLOAD, current, Tolerance(rel=0.0, abs=0.0))


def test_missing_and_extra_keys():
    current = {k: v for k, v in PAYLOAD.items() if k != "notes"}
    current["added"] = 1
    kinds = {d.path: d.kind for d in diff_payloads(PAYLOAD, current)}
    assert kinds == {"$.notes": "missing", "$.added": "extra"}


def test_length_change_and_tail_items():
    current = {**PAYLOAD, "rows": [["app", 1, 2.5]]}
    diffs = diff_payloads(PAYLOAD, current)
    assert [d.kind for d in diffs] == ["length"]


def test_type_change_is_reported_not_crashed():
    current = {**PAYLOAD, "notes": "a note"}
    diffs = diff_payloads(PAYLOAD, current)
    assert [d.kind for d in diffs] == ["type"]
    assert "list became str" in diffs[0].detail


def test_bool_is_not_numerically_equal_to_int():
    diffs = diff_payloads({"v": 1}, {"v": True})
    assert [d.kind for d in diffs] == ["type"]


def test_int_float_same_value_are_equal():
    assert diff_payloads({"v": 1}, {"v": 1.0}) == []


def test_nan_payload_reproduces_cleanly():
    assert diff_payloads({"v": math.nan}, {"v": math.nan}) == []
    assert len(diff_payloads({"v": math.nan}, {"v": 0.0})) == 1


# ---------------------------------------------------------------------------
# render_report


def _payload_diff(**kwargs):
    base = dict(
        figure_id="fig_x",
        golden_path="results/golden/fig_x.json",
        current_path="results/fig_x.json",
    )
    base.update(kwargs)
    return PayloadDiff(**base)


def test_render_clean_report():
    report = render_report([_payload_diff()])
    assert "no drift" in report


def test_render_unified_diff_markers():
    diffs = diff_payloads(PAYLOAD, {**PAYLOAD, "notes": ["edited"]})
    report = render_report([_payload_diff(differences=diffs)])
    assert "--- results/golden/fig_x.json" in report
    assert "+++ results/fig_x.json" in report
    assert "@ $.notes[0] (value)" in report
    assert "- 'a note'" in report
    assert "+ 'edited'" in report
    assert "1 figure(s) drifted, 1 difference(s) total" in report


def test_render_truncates_long_diff_lists():
    diffs = diff_payloads(
        {"rows": list(range(100))}, {"rows": [v + 1 for v in range(100)]}
    )
    report = render_report([_payload_diff(differences=diffs)], max_per_figure=5)
    assert "... and 95 more difference(s)" in report


def test_render_reports_golden_errors():
    report = render_report([_payload_diff(error="no golden snapshot")])
    assert "!! no golden snapshot" in report
