"""Serving resilience layer tests (repro.serve under repro.faults).

Covers the contract of the fault-aware request lifecycle:

* the **no-lost-request invariant** — every admitted request terminates
  exactly once as completed, shed, failed-with-cause, or rejected, and
  the KV pager drains to zero blocks on every fault path (the engine
  asserts both at drain; these tests drive the fault paths that could
  break them),
* engine crash-and-restart: KV loss, re-attestation cost, chunked
  recompute of survivors, restart budget -> give-up with cause,
* degradation policies: TTFT timeout and deadline shedding, admission
  pushback, circuit breaker during SPDM storms,
* Hypothesis chaos fuzzing: random fault schedules x random arrival
  traces, plus byte-determinism of the verdict JSON for a fixed seed,
* the RetryPolicy backoff overflow regression (huge attempt numbers).
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.config import SystemConfig
from repro.faults import (
    BOUNCE_POOL,
    DMA,
    GCM_TAG,
    HYPERCALL,
    SPDM,
    FaultPlan,
    RetryPolicy,
    SiteFaults,
)
from repro.llm.kvcache import KVCacheError
from repro.serve import (
    COMPLETED,
    FAILED,
    SHED,
    DegradationPolicy,
    KVPager,
    LifecycleError,
    LifecycleLedger,
    ScenarioSpec,
    run_scenario,
    verdict_json,
)

NS_PER_SEC = units.NS_PER_SEC

# Short, busy scenario: enough requests to exercise the machinery,
# small enough to keep the suite fast.
SHORT = dict(rate_rps=16.0, duration_ns=NS_PER_SEC // 2, seed=7)


def _cc(plan: FaultPlan) -> SystemConfig:
    return SystemConfig.confidential().replace(faults=plan)


def _partition_holds(result) -> None:
    """completed + shed + failed + rejected must cover every request."""
    report = result.report
    total = (
        report["completed"]
        + report["shed"]
        + report["failed"]
        + report["rejected"]
    )
    assert total == result.requests


# ---------------------------------------------------------------------------
# RetryPolicy backoff overflow regression
# ---------------------------------------------------------------------------


def test_backoff_saturates_at_cap_for_large_attempts():
    policy = RetryPolicy()
    cap = policy.backoff_cap_ns
    # Regression: attempt >= 60 used to materialize 2**59+ floats (and
    # 2.0**1024 raises OverflowError) before the min() with the cap.
    assert policy.backoff_ns(60) == cap
    assert policy.backoff_ns(1100) == cap
    assert policy.backoff_ns(10_000) == cap


def test_backoff_clamp_preserves_small_attempt_values():
    policy = RetryPolicy()
    assert policy.backoff_ns(1) == policy.backoff_base_ns
    assert policy.backoff_ns(2) == 2 * policy.backoff_base_ns
    # The exact saturation boundary: values stay monotone up to the cap.
    values = [policy.backoff_ns(a) for a in range(1, 12)]
    assert values == sorted(values)
    assert values[-1] == policy.backoff_cap_ns


def test_backoff_degenerate_policies():
    assert RetryPolicy(backoff_base_ns=0).backoff_ns(50) == 0
    flat = RetryPolicy(backoff_factor=1.0)
    assert flat.backoff_ns(9_999) == flat.backoff_base_ns
    inverted = RetryPolicy(
        backoff_base_ns=units.ms(5.0), backoff_cap_ns=units.ms(2.0)
    )
    assert inverted.backoff_ns(3) == units.ms(2.0)


# ---------------------------------------------------------------------------
# LifecycleLedger / DegradationPolicy
# ---------------------------------------------------------------------------


def test_ledger_rejects_double_termination():
    ledger = LifecycleLedger()
    ledger.submit(1)
    ledger.finish(1, COMPLETED)
    with pytest.raises(LifecycleError, match="terminated twice"):
        ledger.finish(1, SHED, "deadline")


def test_ledger_detects_lost_and_phantom_requests():
    ledger = LifecycleLedger()
    ledger.submit(1)
    ledger.submit(2)
    ledger.finish(1, FAILED, "crypto.gcm_tag")
    with pytest.raises(LifecycleError, match="lost"):
        ledger.check_complete()
    ledger.finish(2, COMPLETED)
    ledger.check_complete()
    ledger.finish(99, SHED, "pushback")
    with pytest.raises(LifecycleError, match="never-submitted"):
        ledger.check_complete()


def test_ledger_counts_by_state():
    ledger = LifecycleLedger()
    for rid, state in ((1, COMPLETED), (2, SHED), (3, SHED), (4, FAILED)):
        ledger.submit(rid)
        ledger.finish(rid, state)
    assert ledger.count(COMPLETED) == 1
    assert ledger.count(SHED) == 2
    assert ledger.count(FAILED) == 1
    with pytest.raises(LifecycleError, match="unknown terminal state"):
        ledger.finish(5, "vanished")


def test_degradation_policy_validation():
    DegradationPolicy().validate()
    with pytest.raises(ValueError, match="shed_policy"):
        DegradationPolicy(shed_policy="panic").validate()
    with pytest.raises(ValueError, match=">= 0"):
        DegradationPolicy(deadline_ms=-1.0).validate()
    with pytest.raises(ValueError, match="max_queue_depth"):
        DegradationPolicy(max_queue_depth=-1).validate()
    policy = DegradationPolicy(deadline_ms=1500.0, ttft_timeout_ms=250.0)
    assert policy.deadline_ns == units.ms(1500.0)
    assert policy.ttft_timeout_ns == units.ms(250.0)
    assert not policy.sheds
    assert DegradationPolicy(shed_policy="deadline").sheds


# ---------------------------------------------------------------------------
# KVPager crash paths
# ---------------------------------------------------------------------------


def _pager(mode: str = "swap") -> KVPager:
    return KVPager(
        capacity_bytes=64 * units.KiB,
        block_tokens=16,
        kv_bytes_per_token=64,
        mode=mode,
    )


def test_pager_crash_releases_everything():
    pager = _pager()
    pager.admit(1, 32)
    pager.admit(2, 48)
    pager.preempt(2)
    lost = pager.crash()
    assert lost == {1: 32, 2: 48}
    assert pager.drained()
    assert pager.stats.crashes == 1
    assert pager.stats.crash_lost_tokens == 80
    pager.check_invariants()


def test_crash_survivors_restore_via_recompute_even_in_swap_mode():
    pager = _pager(mode="swap")
    pager.admit(1, 32)
    lost = pager.crash()
    pager.mark_crash_lost(1, lost[1])
    assert pager.restore_is_recompute(1)
    plan = pager.restore(1)
    assert plan.swap_bytes == 0
    assert plan.recompute_tokens == 32
    # Once restored, the sequence is ordinary again.
    assert not pager.restore_is_recompute(1)
    pager.release(1)
    pager.check_invariants()


def test_mark_crash_lost_rejects_live_sequences():
    pager = _pager()
    pager.admit(1, 16)
    with pytest.raises(KVCacheError, match="still live"):
        pager.mark_crash_lost(1, 16)


def test_drop_evicted_discards_without_restore():
    pager = _pager()
    pager.admit(1, 32)
    pager.preempt(1)
    assert pager.drop_evicted(1) == 32
    assert pager.drained()
    pager.check_invariants()


# ---------------------------------------------------------------------------
# Engine fault paths (end to end through the simulated stack)
# ---------------------------------------------------------------------------


def test_transient_storm_crashes_restart_and_everyone_completes():
    # Every staged copy fails until 40 injections land: runtime retries
    # exhaust, engine retries exhaust, the engine crashes, re-attests,
    # and recomputes the survivors' KV in chunks.
    plan = FaultPlan.from_mapping(
        {GCM_TAG: SiteFaults(rate=1.0, max_faults=40)}
    )
    spec = ScenarioSpec(**SHORT, max_engine_restarts=4)
    _, result = run_scenario(spec, _cc(plan))
    stats = result.engine.stats
    assert stats["crashes"] >= 1
    assert stats["restarts"] == stats["crashes"]
    assert stats["crash_lost_tokens"] > 0
    assert stats["recompute_tokens"] >= stats["crash_lost_tokens"]
    assert stats["failed"] == 0
    assert result.report["completed"] == result.requests
    _partition_holds(result)


def test_persistent_fault_exhausts_restarts_and_fails_with_cause():
    plan = FaultPlan.from_mapping({GCM_TAG: SiteFaults(rate=1.0)})
    spec = ScenarioSpec(**SHORT, max_engine_restarts=2)
    _, result = run_scenario(spec, _cc(plan))
    stats = result.engine.stats
    assert stats["restarts"] == 3  # budget of 2, the third gives up
    assert result.report["completed"] == 0
    assert result.report["failed"] > 0
    causes = result.report["failed_causes"]
    assert GCM_TAG in causes or "engine_down" in causes
    _partition_holds(result)


def test_circuit_breaker_absorbs_spdm_storms():
    plan = FaultPlan.from_mapping(
        {SPDM: SiteFaults(rate=0.05, max_faults=4)}
    )
    spec = ScenarioSpec(**SHORT, circuit_breaker=True)
    _, result = run_scenario(spec, _cc(plan))
    stats = result.engine.stats
    assert stats["spdm_storms"] >= 1
    assert stats["breaker_trips"] >= 1
    assert result.report["completed"] == result.requests
    _partition_holds(result)

    # Without the breaker the same storm stalls inline but still
    # completes; the breaker variant must not lose requests either way.
    bare = ScenarioSpec(**SHORT)
    _, inline = run_scenario(bare, _cc(plan))
    assert inline.engine.stats["breaker_trips"] == 0
    assert inline.report["completed"] == inline.requests
    _partition_holds(inline)


def test_ttft_timeout_sheds_queued_requests():
    # An overloaded box with a tiny TTFT budget: queued requests are
    # shed with an explicit cause instead of waiting forever.
    spec = ScenarioSpec(
        rate_rps=48.0,
        duration_ns=NS_PER_SEC // 2,
        seed=7,
        max_num_seqs=4,
        ttft_timeout_ms=30.0,
        shed_policy="deadline",
    )
    plan = FaultPlan.from_mapping(
        {GCM_TAG: SiteFaults(rate=0.01, max_faults=10)}
    )
    _, result = run_scenario(spec, _cc(plan))
    assert result.report["shed"] > 0
    assert "ttft_timeout" in result.report["shed_causes"]
    _partition_holds(result)


def test_pushback_sheds_on_queue_saturation():
    spec = ScenarioSpec(
        rate_rps=64.0,
        duration_ns=NS_PER_SEC // 2,
        seed=7,
        max_num_seqs=4,
        shed_policy="pushback",
        max_queue_depth=4,
    )
    plan = FaultPlan.from_mapping(
        {DMA: SiteFaults(rate=0.005, max_faults=10)}
    )
    _, result = run_scenario(spec, _cc(plan))
    assert "pushback" in result.report["shed_causes"]
    _partition_holds(result)


def test_inert_policy_and_empty_plan_change_nothing():
    # Zero-perturbation: explicit inert knobs produce byte-identical
    # verdicts to the all-defaults spec (the golden gate pins the
    # cross-build half of this guarantee).
    base = ScenarioSpec(**SHORT)
    explicit = ScenarioSpec(
        **SHORT,
        deadline_ms=0.0,
        ttft_timeout_ms=0.0,
        shed_policy="none",
        circuit_breaker=False,
        max_queue_depth=0,
    )
    a = verdict_json(run_scenario(base, SystemConfig.confidential())[1])
    b = verdict_json(run_scenario(explicit, SystemConfig.confidential())[1])
    assert a == b
    payload = json.loads(a)
    assert payload["faults"] == {"active": False, "sites": {}}
    assert payload["engine"]["shed"] == 0
    assert payload["engine"]["failed"] == 0
    assert payload["engine"]["restarts"] == 0


def test_fault_verdict_records_the_plan():
    plan = FaultPlan.from_mapping(
        {HYPERCALL: SiteFaults(rate=0.001, max_faults=2)}
    )
    spec = ScenarioSpec(**SHORT)
    payload = json.loads(
        verdict_json(run_scenario(spec, _cc(plan))[1])
    )
    assert payload["faults"]["active"] is True
    assert payload["faults"]["sites"] == {
        HYPERCALL: {"rate": 0.001, "max_faults": 2}
    }


# ---------------------------------------------------------------------------
# Hypothesis chaos fuzzing
# ---------------------------------------------------------------------------


@st.composite
def chaos_cases(draw):
    """Random fault schedule x random arrival trace x random policy."""
    sites = {}
    for site, ceiling in (
        (GCM_TAG, 0.05),
        (DMA, 0.03),
        (HYPERCALL, 0.02),
        (BOUNCE_POOL, 0.02),
        (SPDM, 0.01),
    ):
        if draw(st.booleans()):
            sites[site] = SiteFaults(
                rate=draw(st.floats(0.0005, ceiling)),
                max_faults=draw(st.integers(1, 30)),
            )
    if not sites:
        sites[GCM_TAG] = SiteFaults(rate=0.01, max_faults=5)
    spec = ScenarioSpec(
        rate_rps=draw(st.sampled_from([8.0, 16.0, 24.0])),
        duration_ns=draw(st.sampled_from([NS_PER_SEC // 5, NS_PER_SEC // 4])),
        seed=draw(st.integers(0, 2**16)),
        process=draw(st.sampled_from(["poisson", "gamma"])),
        max_num_seqs=draw(st.sampled_from([4, 8])),
        preemption=draw(st.sampled_from(["swap", "recompute"])),
        kv_budget_bytes=draw(st.sampled_from([24, 48])) * units.MiB,
        deadline_ms=draw(st.sampled_from([0.0, 1500.0, 4000.0])),
        ttft_timeout_ms=draw(st.sampled_from([0.0, 120.0, 600.0])),
        shed_policy=draw(st.sampled_from(["none", "deadline", "pushback"])),
        circuit_breaker=draw(st.booleans()),
        max_queue_depth=draw(st.sampled_from([0, 4, 16])),
        max_engine_restarts=draw(st.integers(0, 3)),
    )
    return spec, FaultPlan.from_mapping(sites)


@settings(max_examples=10, deadline=None)
@given(chaos_cases())
def test_chaos_no_request_is_ever_lost(case):
    # The engine asserts the ledger partition and the zero-block pager
    # drain internally on every path; a silent loss or double count
    # raises out of run_scenario.
    spec, plan = case
    _, result = run_scenario(spec, _cc(plan))
    _partition_holds(result)
    report = result.report
    assert report["shed"] == result.engine.stats["shed"]
    assert report["failed"] == result.engine.stats["failed"]
    # Goodput only ever counts completed requests.
    assert report["slo_attained"] <= report["completed"]


@settings(max_examples=4, deadline=None)
@given(chaos_cases())
def test_chaos_verdict_bytes_are_deterministic(case):
    spec, plan = case
    first = verdict_json(run_scenario(spec, _cc(plan))[1])
    second = verdict_json(run_scenario(spec, _cc(plan))[1])
    assert first == second
