"""Smoke + shape tests for every figure generator (small parameters so
the whole file stays fast; the full-size runs live in benchmarks/)."""

from repro import units
from repro.figures import (
    extensions,
    fig01_overview,
    fig03_model,
    fig04_bandwidth,
    fig05_copytime,
    fig06_alloc,
    fig07_launch,
    fig08_flamegraph,
    fig09_ket,
    fig10_events,
    fig11_cdf,
    fig12_micro,
    fig13_cnn,
    fig14_llm,
    table1_config,
)


def _columns_match(result):
    for row in result.rows:
        assert len(row) == len(result.columns), result.figure_id


def test_table1():
    result = table1_config.generate()
    _columns_match(result)
    assert any("H100" in str(row[1]) for row in result.rows)


def test_fig01_small():
    result = fig01_overview.generate(app_name="2mm")
    _columns_match(result)
    scenarios = {row[0] for row in result.rows}
    assert scenarios == {"cc-off", "cc-on", "cc-on-uvm"}


def test_fig03_small():
    result = fig03_model.generate(app_names=("2mm",))
    _columns_match(result)
    assert len(result.rows) == 2  # base + cc


def test_fig04a_small():
    result = fig04_bandwidth.generate_4a(sizes=[4096, units.MiB])
    _columns_match(result)
    assert len(result.rows) == 16


def test_fig04b():
    result = fig04_bandwidth.generate_4b()
    _columns_match(result)
    assert {row[0] for row in result.rows} == {
        "intel-emr-xeon-6530", "nvidia-grace"
    }


def test_fig05_small():
    result = fig05_copytime.generate(app_names=["2mm", "cnn"])
    _columns_match(result)


def test_fig06_small():
    result = fig06_alloc.generate(sizes=(4 * units.MiB, 64 * units.MiB))
    _columns_match(result)
    assert len(result.comparisons) == 9


def test_fig07_small():
    result = fig07_launch.generate(app_names=["2mm", "sc"])
    _columns_match(result)
    assert result.rows[-1][0] == "MEAN"


def test_fig08():
    result = fig08_flamegraph.generate()
    _columns_match(result)
    assert any("set_memory_decrypted" in row[0] for row in result.rows)


def test_fig09_small():
    result = fig09_ket.generate(app_names=["gramschm"])
    _columns_match(result)


def test_fig10_small():
    result = fig10_events.generate(apps={"A": "gb_bfs", "C": "sc"})
    _columns_match(result)
    # Histogram column parses as ints.
    for row in result.rows:
        assert all(part.isdigit() for part in row[-1].split("|"))


def test_fig11_small():
    result = fig11_cdf.generate(app_names=["2mm", "sc"])
    _columns_match(result)


def test_fig12a_small():
    result = fig12_micro.generate_12a(launches_per_kernel=10)
    _columns_match(result)
    assert len(result.rows) == 40  # 2 modes x 20 launches


def test_fig12b_small():
    result = fig12_micro.generate_12b(launch_counts=(1, 8), total_ket_ns=units.ms(5))
    _columns_match(result)


def test_fig12c_small():
    result = fig12_micro.generate_12c(stream_counts=(1, 64))
    _columns_match(result)


def test_fig13_small():
    result = fig13_cnn.generate(model_names=["vgg16"])
    _columns_match(result)
    assert len(result.rows) == 10  # 5 panels x 2 modes


def test_fig14_small():
    result = fig14_llm.generate(batch_sizes=[1, 64])
    _columns_match(result)


def test_extensions_small():
    for generator in (
        extensions.generate_teeio,
        extensions.generate_attestation,
    ):
        result = generator()
        _columns_match(result)


def test_extensions_multigpu_and_model_load():
    for generator in (
        extensions.generate_multigpu,
        extensions.generate_model_load,
    ):
        result = generator()
        _columns_match(result)
        assert result.comparisons


def test_extension_distributed_small():
    result = extensions.generate_distributed_training(gpu_counts=(1, 2))
    _columns_match(result)
    assert len(result.rows) == 8  # 2 topologies x 2 modes x 2 gpu counts


def test_extension_sensitivity_small():
    result = extensions.generate_sensitivity(seeds=(0, 1), apps=("2mm",))
    _columns_match(result)
    assert len(result.rows) == 2


def test_extension_fault_serving_small():
    # Reduced sweep: structure + zero-perturbation parity only (the
    # cliff/graceful predicates need the full-size run, gated by the
    # golden snapshot and accuracy checks).
    from repro.figures import ext_fault_serving

    result = ext_fault_serving.generate_fault_serving(
        fault_rates=(0.0, 0.1),
        variants=("none", "shed+breaker"),
        duration_s=0.5,
    )
    _columns_match(result)
    assert len(result.rows) == 8  # 2 modes x 2 rates x 2 policies
    parity = [c for c in result.comparisons
              if "byte-identical" in c["metric"]]
    assert parity and parity[0]["measured"] == 1.0
    for row in result.rows:
        offered = dict(zip(result.columns, row))
        assert (offered["completed"] + offered["shed"]
                + offered["failed"]) > 0
