"""Integration tests for the CUDA-like runtime on the simulated machine."""

import pytest

from repro import units
from repro.config import SystemConfig
from repro.cuda import Machine, run_app, run_base_and_cc
from repro.gpu import KernelSpec, nanosleep_kernel
from repro.profiler import EventKind


def simple_app(rt):
    dev = yield from rt.malloc(4 * units.MiB)
    host = yield from rt.malloc_host(4 * units.MiB)
    yield from rt.memcpy(dev, host)
    yield from rt.launch(nanosleep_kernel(units.us(50)))
    yield from rt.synchronize()
    yield from rt.memcpy(host, dev)
    yield from rt.free(dev)
    yield from rt.free(host)
    return "done"


def test_simple_app_runs_and_traces():
    trace, result = run_app(simple_app, SystemConfig.base())
    assert result == "done"
    kinds = {e.kind for e in trace}
    assert EventKind.LAUNCH in kinds
    assert EventKind.KERNEL in kinds
    assert EventKind.MEMCPY in kinds
    assert EventKind.ALLOC in kinds
    assert EventKind.FREE in kinds
    assert EventKind.SYNC in kinds


def test_simple_app_runs_under_cc():
    trace, result = run_app(simple_app, SystemConfig.confidential())
    assert result == "done"
    assert len(trace.kernels()) == 1


def test_kernel_waits_for_launch():
    trace, _ = run_app(simple_app, SystemConfig.base())
    launch = trace.launches()[0]
    kernel = trace.kernels()[0]
    assert kernel.start_ns >= launch.end_ns
    assert kernel.queue_ns >= 0


def test_kernel_duration_matches_nanosleep():
    trace, _ = run_app(simple_app, SystemConfig.base())
    kernel = trace.kernels()[0]
    assert kernel.duration_ns == units.us(50)


def test_cc_kernel_duration_nearly_unchanged():
    # Observation 5: non-UVM KET ~unaffected (+0.48 %).
    base, cc = run_base_and_cc(simple_app)
    ket_base = base.kernels()[0].duration_ns
    ket_cc = cc.kernels()[0].duration_ns
    assert ket_cc / ket_base == pytest.approx(1.0048, rel=1e-3)


def test_cc_launch_is_slower():
    base, cc = run_base_and_cc(simple_app)
    klo_base = base.launches()[0].duration_ns
    klo_cc = cc.launches()[0].duration_ns
    assert klo_cc > klo_base


def test_cc_copies_are_slower():
    base, cc = run_base_and_cc(simple_app)
    t_base = base.total_duration_ns(EventKind.MEMCPY)
    t_cc = cc.total_duration_ns(EventKind.MEMCPY)
    assert t_cc > 2 * t_base


def test_cc_allocations_are_slower():
    base, cc = run_base_and_cc(simple_app)
    for kind in (EventKind.ALLOC, EventKind.FREE):
        assert cc.total_duration_ns(kind) > 2 * base.total_duration_ns(kind)


def test_pinned_vs_pageable_gap_disappears_under_cc():
    # Observation 1 (Fig. 4a shape).
    def copy_app(rt, pinned):
        dev = yield from rt.malloc(64 * units.MiB)
        if pinned:
            host = yield from rt.malloc_host(64 * units.MiB)
        else:
            host = yield from rt.host_alloc(64 * units.MiB)
        # Bandwidth-test methodology: warmed buffers (Fig. 4a).
        plan = yield from rt.memcpy(dev, host, cold=False)
        return plan.total_ns

    def copy_time(config, pinned):
        _trace, total = run_app(copy_app, config, pinned=pinned)
        return total

    base_pin = copy_time(SystemConfig.base(), True)
    base_page = copy_time(SystemConfig.base(), False)
    cc_pin = copy_time(SystemConfig.confidential(), True)
    cc_page = copy_time(SystemConfig.confidential(), False)
    # Base: pinned clearly faster than pageable.
    assert base_pin < 0.75 * base_page
    # CC: gap nearly gone.
    assert abs(cc_pin - cc_page) / cc_page < 0.1
    # CC much slower than base.
    assert cc_page > 3 * base_page


def test_cc_pinned_copy_labeled_managed():
    def copy_app(rt):
        dev = yield from rt.malloc(units.MiB)
        host = yield from rt.malloc_host(units.MiB)
        yield from rt.memcpy(dev, host)

    trace, _ = run_app(copy_app, SystemConfig.confidential())
    copy = trace.memcpys()[0]
    assert copy.attrs["managed"] is True

    trace_base, _ = run_app(copy_app, SystemConfig.base())
    assert trace_base.memcpys()[0].attrs["managed"] is False


def test_functional_payload_roundtrip_under_cc():
    payload = b"secret model weights 0123456789"

    def data_app(rt):
        dev = yield from rt.malloc(256)
        host = yield from rt.malloc_host(256)
        host.write(payload)
        yield from rt.memcpy(dev, host)
        out = yield from rt.malloc_host(256)
        yield from rt.memcpy(out, dev)
        return out.read()

    _trace, result = run_app(data_app, SystemConfig.confidential())
    assert result[: len(payload)] == payload


def test_double_free_rejected():
    def bad_app(rt):
        dev = yield from rt.malloc(1024)
        yield from rt.free(dev)
        yield from rt.free(dev)

    with pytest.raises(Exception):
        run_app(bad_app, SystemConfig.base())


def test_host_to_host_copy_rejected():
    def bad_app(rt):
        a = yield from rt.host_alloc(1024)
        b = yield from rt.host_alloc(1024)
        yield from rt.memcpy(a, b)

    with pytest.raises(Exception):
        run_app(bad_app, SystemConfig.base())


def test_streams_overlap_kernels():
    def multi_stream(rt):
        s1 = rt.create_stream()
        s2 = rt.create_stream()
        yield from rt.launch(nanosleep_kernel(units.ms(1), name="k1"), stream=s1)
        yield from rt.launch(nanosleep_kernel(units.ms(1), name="k2"), stream=s2)
        yield from rt.synchronize()

    trace, _ = run_app(multi_stream, SystemConfig.base())
    k1, k2 = trace.kernels()
    # Overlap: second kernel starts before the first finishes.
    assert k2.start_ns < k1.end_ns


def test_same_stream_kernels_serialize():
    def single_stream(rt):
        yield from rt.launch(nanosleep_kernel(units.ms(1), name="k1"))
        yield from rt.launch(nanosleep_kernel(units.ms(1), name="k2"))
        yield from rt.synchronize()

    trace, _ = run_app(single_stream, SystemConfig.base())
    k1, k2 = sorted(trace.kernels(), key=lambda e: e.start_ns)
    assert k2.start_ns >= k1.end_ns


def test_first_launch_costs_more():
    def two_kernels(rt):
        kernel = nanosleep_kernel(units.us(10), name="same")
        yield from rt.launch(kernel)
        yield from rt.launch(kernel)
        yield from rt.synchronize()

    trace, _ = run_app(two_kernels, SystemConfig.base())
    first, second = trace.launches()
    assert first.attrs["first"] is True
    assert second.attrs["first"] is False
    assert first.duration_ns > 5 * second.duration_ns


def test_lqt_recorded_between_launches():
    def looped(rt):
        kernel = nanosleep_kernel(units.us(30), name="loop")
        for _ in range(5):
            yield from rt.launch(kernel)
            yield from rt.synchronize()

    trace, _ = run_app(looped, SystemConfig.base())
    launches = trace.launches()
    assert launches[0].queue_ns == 0
    # Later launches waited for the sync; LQT includes that gap.
    assert all(l.queue_ns > 0 for l in launches[1:])


def test_kqt_increases_under_cc():
    def sync_separated(rt):
        kernel = nanosleep_kernel(units.us(30), name="loop")
        for _ in range(4):
            yield from rt.launch(kernel)
            yield from rt.synchronize()

    base, cc = run_base_and_cc(sync_separated)
    kqt_base = sum(k.queue_ns for k in base.kernels()) / 4
    kqt_cc = sum(k.queue_ns for k in cc.kernels()) / 4
    assert kqt_cc > 1.5 * kqt_base


def test_managed_kernel_faults_and_migrates():
    def uvm_app(rt, config_size=8 * units.MiB):
        buf = yield from rt.malloc_managed(config_size)
        kernel = KernelSpec(name="uvm_kernel", fixed_duration_ns=units.us(40))
        yield from rt.launch(kernel, managed_touches=[(buf, config_size)])
        yield from rt.synchronize()
        # Second launch: data now resident, no faults.
        yield from rt.launch(kernel, managed_touches=[(buf, config_size)])
        yield from rt.synchronize()

    trace, _ = run_app(uvm_app, SystemConfig.base())
    k1, k2 = sorted(trace.kernels(), key=lambda e: e.start_ns)
    assert k1.attrs["faulted_pages"] > 0
    assert k2.attrs["faulted_pages"] == 0
    assert k1.duration_ns > k2.duration_ns


def test_uvm_kernel_blows_up_under_cc():
    size = 8 * units.MiB

    def uvm_app(rt):
        buf = yield from rt.malloc_managed(size)
        kernel = KernelSpec(name="uvm_kernel", fixed_duration_ns=units.us(40))
        yield from rt.launch(kernel, managed_touches=[(buf, size)])
        yield from rt.synchronize()

    base, cc = run_base_and_cc(uvm_app)
    ket_base = base.kernels()[0].duration_ns
    ket_cc = cc.kernels()[0].duration_ns
    assert ket_cc > 20 * ket_base


def test_graph_launch_single_klo_many_kernels():
    def graph_app(rt):
        kernels = [
            nanosleep_kernel(units.us(20), name=f"g{i}") for i in range(10)
        ]
        graph = yield from rt.graph_create(kernels)
        yield from rt.graph_launch(graph)
        yield from rt.synchronize()

    trace, _ = run_app(graph_app, SystemConfig.base())
    assert len(trace.kernels()) == 10
    assert len(trace.launches()) == 1


def test_machine_elapsed_tracks_sim_time():
    machine = Machine(SystemConfig.base())
    machine.run(simple_app)
    assert machine.elapsed_ns > 0
    assert machine.elapsed_ns == machine.sim.now


def test_hbm_freed_after_app():
    machine = Machine(SystemConfig.base())
    machine.run(simple_app)
    assert machine.gpu.hbm.used_bytes == 0
    assert machine.guest.memory.heap.used_bytes == 0
