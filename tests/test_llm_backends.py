"""Tests for LLM serving backends (Fig. 14 behaviours)."""

import pytest

from repro.config import SystemConfig
from repro.llm import (
    AWQ,
    BF16,
    HFBackend,
    LLAMA3_8B,
    VLLMBackend,
    make_requests,
)


BASE = SystemConfig.base()
CC = SystemConfig.confidential()


def test_llama3_8b_parameter_count():
    # ~8.0e9 parameters.
    assert LLAMA3_8B.params == pytest.approx(8.0e9, rel=0.08)


def test_kv_bytes_per_token():
    # 32 layers x 2 (K,V) x 8 heads x 128 dim x 2 bytes = 128 KiB.
    assert LLAMA3_8B.kv_bytes_per_token() == 131072


def test_requests_seeded_and_varied():
    reqs = make_requests(32, seed=3)
    assert len(reqs) == 32
    lengths = {r.gen_tokens for r in reqs}
    assert len(lengths) > 4
    assert reqs == make_requests(32, seed=3)


def test_vllm_beats_hf_at_all_batches():
    """Paper: vLLM outperforms HF across all configurations."""
    for batch in (1, 8, 64):
        reqs = make_requests(max(2 * batch, 8))
        hf = HFBackend(quant=BF16).serve(BASE, reqs, batch)
        vllm = VLLMBackend(quant=BF16).serve(BASE, reqs, batch)
        assert vllm.tokens_per_sec > hf.tokens_per_sec, batch


def test_vllm_beats_hf_even_under_cc():
    reqs = make_requests(16)
    hf_base = HFBackend(quant=BF16).serve(BASE, reqs, 8)
    vllm_cc = VLLMBackend(quant=BF16).serve(CC, reqs, 8)
    assert vllm_cc.tokens_per_sec > hf_base.tokens_per_sec


def test_cc_reduces_throughput():
    reqs = make_requests(16)
    for quant in (BF16, AWQ):
        off = VLLMBackend(quant=quant).serve(BASE, reqs, 8)
        on = VLLMBackend(quant=quant).serve(CC, reqs, 8)
        assert on.tokens_per_sec < off.tokens_per_sec, quant.name


def test_awq_wins_small_batch_bf16_wins_large():
    """Paper: AWQ > BF16 at small batch; BF16 >= AWQ at 64/128."""
    for batch, awq_should_win in ((8, True), (128, False)):
        reqs = make_requests(max(2 * batch, 8))
        bf16 = VLLMBackend(quant=BF16).serve(BASE, reqs, batch)
        awq = VLLMBackend(quant=AWQ).serve(BASE, reqs, batch)
        if awq_should_win:
            assert awq.tokens_per_sec > bf16.tokens_per_sec
        else:
            assert bf16.tokens_per_sec > awq.tokens_per_sec


def test_throughput_scales_with_batch():
    reqs = make_requests(128)
    small = VLLMBackend(quant=BF16).serve(BASE, reqs, 1)
    large = VLLMBackend(quant=BF16).serve(BASE, reqs, 32)
    assert large.tokens_per_sec > 5 * small.tokens_per_sec


def test_token_accounting_exact():
    reqs = make_requests(12)
    expected = sum(r.gen_tokens for r in reqs)
    result = VLLMBackend(quant=BF16).serve(BASE, reqs, 4)
    assert result.total_tokens == expected
    result_hf = HFBackend(quant=BF16).serve(BASE, reqs, 4)
    assert result_hf.total_tokens == expected


def test_serve_result_metadata():
    reqs = make_requests(8)
    result = VLLMBackend(quant=AWQ).serve(CC, reqs, 4)
    assert result.backend == "vllm"
    assert result.quant == "awq"
    assert result.cc is True
    assert result.tokens_per_sec > 0


def test_latency_samples_collected():
    reqs = make_requests(12)
    for backend_cls in (HFBackend, VLLMBackend):
        result = backend_cls(quant=BF16).serve(BASE, reqs, 4)
        assert len(result.e2e_ns) == len(reqs)
        assert len(result.ttft_ns) == len(reqs)
        assert result.ttft_ms(50) > 0
        assert result.e2e_latency_ms(95) >= result.e2e_latency_ms(50)
        # First token always precedes request completion.
        assert min(result.e2e_ns) >= min(result.ttft_ns)


def test_vllm_ttft_beats_hf():
    """Continuous batching admits requests immediately; static batching
    queues later batches behind earlier ones."""
    reqs = make_requests(32)
    hf = HFBackend(quant=BF16).serve(BASE, reqs, 8)
    vllm = VLLMBackend(quant=BF16).serve(BASE, reqs, 8)
    assert vllm.e2e_latency_ms(95) < hf.e2e_latency_ms(95)


def test_cc_increases_latency():
    reqs = make_requests(8)
    off = VLLMBackend(quant=BF16).serve(BASE, reqs, 8)
    on = VLLMBackend(quant=BF16).serve(CC, reqs, 8)
    assert on.e2e_latency_ms(50) > off.e2e_latency_ms(50)


def test_empty_percentiles_safe():
    from repro.llm.backends import ServeResult

    result = ServeResult("x", "bf16", False, 1, 0, 1)
    assert result.ttft_ms() == 0.0
    assert result.e2e_latency_ms(99) == 0.0
