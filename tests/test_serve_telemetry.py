"""Tests for request-scoped serving telemetry: zero perturbation,
exact per-request CC-tax conservation, forensics consistency with the
verdict, per-request trace tracks, and byte-deterministic exports."""

import json

import pytest

from repro import units
from repro.config import SystemConfig
from repro.faults import FaultPlan
from repro.obs import summary
from repro.profiler.importers import from_chrome_trace
from repro.serve import (
    ATTRIBUTION_COMPONENTS,
    EngineOp,
    ScenarioSpec,
    ServeTelemetry,
    TelemetryError,
    component_timeline,
    forensics_diff,
    latency_percentiles,
    pick_percentile_request,
    requests_csv,
    requests_jsonl,
    run_scenario,
    tail_report,
    tenant_rollup,
    verdict_json,
)
from repro.serve.telemetry import _clip, _merged, _subtract

QUICK = ScenarioSpec(rate_rps=16.0, duration_ns=units.NS_PER_SEC // 2)

# Forces paging (KV swaps) so swap_out/swap_in ops appear.
PAGING = ScenarioSpec(
    rate_rps=32.0,
    duration_ns=units.NS_PER_SEC // 2,
    max_num_seqs=8,
    kv_budget_bytes=24 * units.MiB,
)

# Fault pressure + shedding so terminal states beyond "completed" and
# recovery attribution both appear.
FAULTY = ScenarioSpec(
    rate_rps=24.0,
    duration_ns=units.NS_PER_SEC // 2,
    ttft_timeout_ms=120.0,
    shed_policy="pushback",
    max_queue_depth=4,
    circuit_breaker=True,
)


def _faulty_config():
    return SystemConfig.confidential().replace(
        faults=FaultPlan.uniform(0.05, max_faults=12)
    )


@pytest.fixture(scope="module")
def cc_run():
    return run_scenario(QUICK, SystemConfig.confidential(), telemetry=True)


@pytest.fixture(scope="module")
def base_run():
    return run_scenario(QUICK, SystemConfig.base(), telemetry=True)


# -- interval algebra ------------------------------------------------------


def test_interval_helpers():
    assert _merged([(5, 9), (0, 3), (2, 4), (7, 7)]) == [(0, 4), (5, 9)]
    assert _clip([(0, 4), (5, 9)], 2, 7) == [(2, 4), (5, 7)]
    assert _clip([(0, 4)], 4, 9) == []
    assert _subtract([(0, 10)], [(2, 4), (6, 8)]) == [
        (0, 2), (4, 6), (8, 10),
    ]
    assert _subtract([(0, 10)], [(0, 10)]) == []


def test_component_timeline_gap_fill_and_overlap_rejection():
    class EmptyTrace:
        spans = ()

        def recoveries(self):
            return []

        def kernels(self):
            return []

    ops = [EngineOp("sched", 10, 20), EngineOp("prefill", 30, 40)]
    timeline = component_timeline(ops, EmptyTrace(), 50)
    assert timeline == [
        (0, 10, "other"),
        (10, 20, "D"),
        (20, 30, "other"),
        (30, 40, "Q"),
        (40, 50, "other"),
    ]
    with pytest.raises(TelemetryError, match="overlapping"):
        component_timeline(
            [EngineOp("sched", 0, 20), EngineOp("sched", 10, 30)],
            EmptyTrace(), 30,
        )


def test_unknown_op_kind_rejected():
    tel = ServeTelemetry()
    tel.bind_clock(lambda: 0)
    with pytest.raises(TelemetryError, match="unknown engine op"):
        with tel.op("warp_drive"):
            pass


# -- the tentpole invariants ----------------------------------------------


def test_zero_perturbation_verdict_bytes(cc_run):
    _, with_tel = cc_run
    _, without = run_scenario(
        QUICK, SystemConfig.confidential(), telemetry=False
    )
    assert verdict_json(with_tel) == verdict_json(without)
    assert without.attributions is None
    assert with_tel.attributions


def test_attribution_conserves_exactly(cc_run):
    _, result = cc_run
    for a in result.attributions:
        assert sum(a.components.values()) == a.e2e_ns
        if a.ttft_ns is not None:
            assert sum(a.ttft_components.values()) == a.ttft_ns
            # The TTFT window is a prefix of the request: no component
            # can have more TTFT-window time than total time.
            for component, value in a.ttft_components.items():
                assert value <= a.components.get(component, 0)
        assert set(a.components) <= set(ATTRIBUTION_COMPONENTS)


def test_attribution_conserves_under_paging_and_faults():
    for spec, config in (
        (PAGING, SystemConfig.confidential()),
        (FAULTY, _faulty_config()),
    ):
        _, result = run_scenario(spec, config, telemetry=True)
        assert result.attributions
        statuses = {a.status for a in result.attributions}
        for a in result.attributions:
            assert sum(a.components.values()) == a.e2e_ns
        if spec is PAGING:
            assert any(a.preemptions for a in result.attributions)
        else:
            # fault pressure must produce non-completed terminals
            assert statuses - {"completed"}


def test_forensics_percentiles_reproduce_verdict(cc_run):
    _, result = cc_run
    recomputed = latency_percentiles(result.attributions)
    for metric in ("ttft_ms", "tpot_ms", "e2e_ms"):
        for key in ("p50", "p95", "p99"):
            assert recomputed[metric][key] == result.report[metric][key]


def test_p99_pick_is_the_reported_percentile(cc_run):
    _, result = cc_run
    p99 = pick_percentile_request(result.attributions, 99)
    assert units.to_ms(p99.ttft_ns) == result.report["ttft_ms"]["p99"]


def test_tail_report_shape_and_order(cc_run):
    _, result = cc_run
    report = tail_report(result.attributions, top=3)
    slowest = report["slowest"]
    assert len(slowest) == 3
    e2es = [r["e2e_ns"] for r in slowest]
    assert e2es == sorted(e2es, reverse=True)
    assert report["ttft_p99"]["ttft_ms"] == result.report["ttft_ms"]["p99"]
    # every record's flattened components conserve too
    for record in slowest:
        total = sum(record[f"c_{c}"] for c in ATTRIBUTION_COMPONENTS)
        assert total == record["e2e_ns"]


def test_tenant_rollup_partitions_requests(cc_run):
    _, result = cc_run
    rollup = tenant_rollup(result.attributions)
    assert sum(r["requests"] for r in rollup.values()) == len(
        result.attributions
    )
    for tenant, row in rollup.items():
        mine = [a for a in result.attributions if a.tenant == tenant]
        assert row["completed"] == sum(
            1 for a in mine if a.status == "completed"
        )
        assert sum(row["components_ns"].values()) == sum(
            a.e2e_ns for a in mine
        )


def test_forensics_diff_sums_exactly(base_run, cc_run):
    _, base = base_run
    _, cc = cc_run
    diff = forensics_diff(base.attributions, cc.attributions)
    assert sum(diff["components_delta_ns"].values()) == diff["delta_ns"]
    assert diff["dominant"] in ATTRIBUTION_COMPONENTS


def test_engine_ops_tag_owning_requests(cc_run):
    trace, result = cc_run
    op_spans = [s for s in trace.spans if s.layer == "serve.op"]
    assert op_spans
    kinds = {s.name for s in op_spans}
    assert {"prompt_upload", "prefill", "decode", "token_d2h",
            "sched"} <= kinds
    completed = {
        str(a.req_id)
        for a in result.attributions
        if a.status == "completed"
    }
    tagged = set()
    for span in op_spans:
        if span.attrs.get("reqs"):
            tagged |= set(span.attrs["reqs"].split(","))
    # every completed request shows up as an owner of some engine op
    assert completed <= tagged


def test_per_request_spans_and_chrome_tracks(cc_run):
    trace, result = cc_run
    roots = [
        s for s in trace.spans
        if s.layer == "serve.req" and s.name == "request"
    ]
    assert len(roots) == len(result.attributions)
    payload = json.loads(trace.to_chrome_trace())
    names = {
        row["args"]["name"]
        for row in payload["traceEvents"]
        if row.get("ph") == "M" and row["name"] == "thread_name"
    }
    for a in result.attributions:
        assert f"req:{a.req_id}" in names
    # one tid per request, all distinct
    req_tids = {
        row["tid"]
        for row in payload["traceEvents"]
        if row.get("ph") == "M" and row["name"] == "thread_name"
        and row["args"]["name"].startswith("req:")
    }
    assert len(req_tids) == len(result.attributions)


def test_trace_roundtrip_preserves_attributions(cc_run):
    trace, result = cc_run
    text = trace.to_chrome_trace()
    clone = from_chrome_trace(text)
    assert clone.to_chrome_trace() == text
    reimported = summary.serve_attributions(clone)
    assert reimported == sorted(
        result.attributions, key=lambda a: a.req_id
    )


def test_exports_byte_deterministic(cc_run):
    _, first = cc_run
    _, second = run_scenario(
        QUICK, SystemConfig.confidential(), telemetry=True
    )
    assert requests_jsonl(first.attributions) == requests_jsonl(
        second.attributions
    )
    assert requests_csv(first.attributions) == requests_csv(
        second.attributions
    )
    lines = requests_jsonl(first.attributions).strip().splitlines()
    assert len(lines) == len(first.attributions)
    record = json.loads(lines[0])
    assert record["e2e_ns"] == sum(
        record[f"c_{c}"] for c in ATTRIBUTION_COMPONENTS
    )
    header = requests_csv(first.attributions).splitlines()[0]
    assert header.split(",")[0] == "req_id"


def test_queue_attribution_never_admitted():
    # Aggressive pushback: some requests are shed before admission —
    # their whole lifetime must be queue time and nothing else.
    _, result = run_scenario(
        FAULTY, _faulty_config(), telemetry=True
    )
    shed = [a for a in result.attributions if a.admitted_ns is None]
    assert shed, "expected never-admitted requests under pushback"
    for a in shed:
        assert a.first_token_ns is None
        assert set(a.components) <= {"queue"}
        assert a.components.get("queue", 0) == a.e2e_ns
