"""Tests for hierarchical spans: recording modes, scope isolation,
layer queries, and flame-graph folding from span trees."""

from repro.obs import Span, SpanRecorder
from repro.obs.spans import CANONICAL_LAYERS, layer_sort_key
from repro.profiler import folded_from_spans, frame_share, tree_from_spans


class FakeClock:
    def __init__(self):
        self.now = 0

    def __call__(self):
        return self.now


def _recorder():
    clock = FakeClock()
    return SpanRecorder(clock=clock), clock


# --- recording ------------------------------------------------------------


def test_context_manager_nesting():
    rec, clock = _recorder()
    with rec.span("outer", "driver") as outer:
        clock.now = 10
        with rec.span("inner", "tdx_module") as inner:
            clock.now = 30
        clock.now = 50
    assert outer.parent_id is None
    assert inner.parent_id == outer.span_id
    assert inner.start_ns == 10 and inner.duration_ns == 20
    assert outer.start_ns == 0 and outer.duration_ns == 50


def test_span_closes_on_exception():
    rec, clock = _recorder()
    try:
        with rec.span("fails", "driver"):
            clock.now = 7
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    (span,) = rec.spans
    assert span.duration_ns == 7
    # The open stack is clean: a later span is a root, not a child.
    with rec.span("next", "driver") as nxt:
        pass
    assert nxt.parent_id is None


def test_scopes_do_not_misparent():
    rec, clock = _recorder()
    with rec.span("cpu_work", "driver"):
        with rec.span("gpu_work", "gpu.compute", scope="gpu:s0") as gpu:
            pass
    assert gpu.parent_id is None  # its scope has no open parent


def test_record_defaults_to_innermost_open_span():
    rec, clock = _recorder()
    with rec.span("op", "driver") as op:
        clock.now = 100
        retro = rec.record("recover:site", "recovery", 40, 60)
    assert retro.parent_id == op.span_id


def test_record_explicit_parent_and_attrs():
    rec, _ = _recorder()
    parent = rec.record("hypercall", "tdx_module", 0, 10)
    child = rec.record(
        "seamcall", "tdx_module", 0, 10, parent=parent, pages=4
    )
    by_id = rec.record("other", "td", 0, 5, parent=parent.span_id)
    assert child.parent_id == parent.span_id
    assert by_id.parent_id == parent.span_id
    assert child.attrs == {"pages": 4}


def test_disabled_recorder_records_nothing():
    rec = SpanRecorder(enabled=False)
    with rec.span("x", "driver") as span:
        assert span is None
    assert rec.record("y", "td", 0, 1) is None
    assert len(rec) == 0


def test_add_keeps_id_counter_ahead():
    rec, _ = _recorder()
    rec.add(Span(span_id=41, parent_id=None, name="imported",
                 layer="driver", start_ns=0, duration_ns=5))
    fresh = rec.record("new", "driver", 5, 1)
    assert fresh.span_id > 41


# --- queries --------------------------------------------------------------


def test_layer_sort_key_taxonomy_then_alpha():
    layers = ["recovery", "gpu.compute", "td", "driver", "api"]
    ordered = sorted(layers, key=layer_sort_key)
    assert ordered == ["td", "driver", "gpu.compute", "api", "recovery"]
    assert CANONICAL_LAYERS[0] == "td"


def test_layer_busy_merges_overlap():
    rec, _ = _recorder()
    rec.record("a", "dma", 0, 100)
    rec.record("b", "dma", 50, 100)  # overlaps a by 50
    rec.record("c", "driver", 500, 10)
    busy = rec.layer_busy_ns()
    assert busy["dma"] == 150  # union, not 200
    assert rec.total_ns("dma") == 200  # plain sum double-counts
    assert busy["driver"] == 10
    assert rec.layers() == ["driver", "dma"]


def test_subtree_and_roots():
    rec, _ = _recorder()
    root = rec.record("root", "driver", 0, 100)
    child = rec.record("child", "td", 0, 40, parent=root)
    grand = rec.record("grand", "tdx_module", 0, 10, parent=child)
    other = rec.record("other", "driver", 200, 5)
    assert rec.roots() == [root, other]
    assert rec.subtree(root) == [root, child, grand]
    assert rec.children_of(root.span_id) == [child]


# --- flame-graph folding --------------------------------------------------


def test_tree_from_spans_self_time():
    rec, _ = _recorder()
    root = rec.record("launch", "driver", 0, 100)
    rec.record("hypercall", "tdx_module", 10, 60, parent=root)
    tree = tree_from_spans(rec.spans, root_name="R")
    launch = tree.children["launch"]
    assert launch.total_ns == 100
    assert launch.self_ns == 40  # 100 inclusive - 60 child
    assert frame_share(tree, "hypercall") == 0.6


def test_folded_from_spans_rows():
    rec, _ = _recorder()
    root = rec.record("launch", "driver", 0, 100)
    rec.record("hypercall", "tdx_module", 10, 60, parent=root)
    rows = dict(folded_from_spans(rec.spans))
    assert rows == {"launch": 40, "launch;hypercall": 60}
