"""Tests for tree/hierarchical collectives and the algorithm picker."""

import dataclasses

from repro import units
from repro.config import SystemConfig
from repro.multigpu import (
    LinkSecurity,
    MultiGPUNode,
    best_all_reduce,
    hierarchical_all_reduce,
    ring_all_reduce,
    tree_all_reduce,
)


def test_tree_wins_small_messages_ring_wins_large():
    node = MultiGPUNode(num_gpus=8)
    small = 64 * units.KiB
    large = units.GB
    assert (
        tree_all_reduce(node, small, LinkSecurity.NONE).time_ns
        < ring_all_reduce(node, small, LinkSecurity.NONE).time_ns
    )
    assert (
        ring_all_reduce(node, large, LinkSecurity.NONE).time_ns
        < tree_all_reduce(node, large, LinkSecurity.NONE).time_ns
    )


def test_best_all_reduce_picks_minimum():
    node = MultiGPUNode(num_gpus=8)
    for size in (64 * units.KiB, units.GB):
        best = best_all_reduce(node, size, LinkSecurity.NONE)
        ring = ring_all_reduce(node, size, LinkSecurity.NONE)
        tree = tree_all_reduce(node, size, LinkSecurity.NONE)
        assert best.time_ns == min(ring.time_ns, tree.time_ns)


def test_tree_security_ordering():
    node = MultiGPUNode(num_gpus=8)
    size = 64 * units.MiB
    times = {
        s: tree_all_reduce(node, size, s).time_ns for s in LinkSecurity
    }
    assert times[LinkSecurity.NONE] < times[LinkSecurity.BATCHED]
    assert times[LinkSecurity.BATCHED] < times[LinkSecurity.NAIVE]


def test_hierarchical_single_island_matches_ring_shape():
    config = SystemConfig.base()
    result = hierarchical_all_reduce(
        config, num_islands=1, island_size=4,
        size_bytes=256 * units.MiB, security=LinkSecurity.NONE,
    )
    ring = ring_all_reduce(
        MultiGPUNode(num_gpus=4), 256 * units.MiB, LinkSecurity.NONE
    )
    assert result.time_ns == ring.time_ns
    assert result.num_gpus == 4


def test_hierarchical_pcie_bridge_is_the_bottleneck():
    config = SystemConfig.base()
    one_island = hierarchical_all_reduce(
        config, 1, 2, 256 * units.MiB, LinkSecurity.NONE
    )
    two_islands = hierarchical_all_reduce(
        config, 2, 2, 256 * units.MiB, LinkSecurity.NONE
    )
    # Crossing PCIe costs far more than staying on NVLink.
    assert two_islands.time_ns > 2 * one_island.time_ns


def test_hierarchical_cc_tax_hits_cross_island_phase():
    base = hierarchical_all_reduce(
        SystemConfig.base(), 2, 2, 256 * units.MiB, LinkSecurity.NONE
    )
    cc = hierarchical_all_reduce(
        SystemConfig.confidential(), 2, 2, 256 * units.MiB,
        LinkSecurity.BATCHED,
    )
    # The CC PCIe bounce+crypto path dominates: ~26 GB/s -> ~3 GB/s on
    # the inter-island hops.
    assert cc.time_ns > 3 * base.time_ns


def test_hierarchical_teeio_recovers_cross_island():
    cc = SystemConfig.confidential()
    teeio = cc.replace(tdx=dataclasses.replace(cc.tdx, teeio=True))
    slow = hierarchical_all_reduce(
        cc, 2, 2, 256 * units.MiB, LinkSecurity.BATCHED
    )
    fast = hierarchical_all_reduce(
        teeio, 2, 2, 256 * units.MiB, LinkSecurity.BATCHED
    )
    assert fast.time_ns < 0.4 * slow.time_ns
