"""Tests for the TDX guest-context cost model and call-stack recorder."""

import pytest

from repro import units
from repro.config import SystemConfig
from repro.sim import Simulator
from repro.tdx import CallStackRecorder, GuestContext


def run(gen, sim):
    return sim.run(until=sim.process(gen))


# --- hypercall costs ---------------------------------------------------


def test_td_hypercall_costs_5_7x_vm_exit():
    # Calibrated to the paper's +470 % figure.
    base = SystemConfig.base()
    cc = SystemConfig.confidential()
    ratio = cc.hypercall_ns() / base.hypercall_ns()
    assert ratio == pytest.approx(5.7, rel=0.02)


def test_hypercall_advances_time_and_counts():
    sim = Simulator()
    guest = GuestContext(sim, SystemConfig.confidential())
    run(guest.hypercall("test"), sim)
    assert sim.now == SystemConfig.confidential().tdx.td_hypercall_ns
    assert guest.hypercall_count == 1


def test_cpu_work_td_tax():
    base_sim, cc_sim = Simulator(), Simulator()
    base = GuestContext(base_sim, SystemConfig.base())
    cc = GuestContext(cc_sim, SystemConfig.confidential())
    run(base.cpu_work(units.us(100)), base_sim)
    run(cc.cpu_work(units.us(100)), cc_sim)
    assert cc_sim.now == pytest.approx(base_sim.now * 1.04, rel=0.01)


def test_accept_pages_noop_in_base_mode():
    sim = Simulator()
    guest = GuestContext(sim, SystemConfig.base())
    run(guest.accept_pages(100), sim)
    assert sim.now == 0
    assert guest.pages_accepted == 0


def test_accept_pages_scales_with_count():
    sim = Simulator()
    config = SystemConfig.confidential()
    guest = GuestContext(sim, config)
    run(guest.accept_pages(10), sim)
    assert sim.now == 10 * config.tdx.page_accept_ns
    assert guest.pages_accepted == 10


def test_set_memory_decrypted_timed_and_tracked():
    sim = Simulator()
    config = SystemConfig.confidential()
    guest = GuestContext(sim, config)
    addr = guest.memory.alloc(8 * config.tdx.page_size)
    run(guest.set_memory_decrypted(addr, 8 * config.tdx.page_size), sim)
    assert sim.now == 8 * config.tdx.page_convert_ns
    assert guest.pages_converted == 8
    # Second call: already shared, free.
    before = sim.now
    run(guest.set_memory_decrypted(addr, 8 * config.tdx.page_size), sim)
    assert sim.now == before


def test_dma_alloc_bounce_converts_and_costs_more_under_cc():
    base_sim, cc_sim = Simulator(), Simulator()
    base = GuestContext(base_sim, SystemConfig.base())
    cc = GuestContext(cc_sim, SystemConfig.confidential())
    slot_base = base_sim.run(until=base_sim.process(base.dma_alloc_bounce(64 * units.KiB)))
    slot_cc = cc_sim.run(until=cc_sim.process(cc.dma_alloc_bounce(64 * units.KiB)))
    assert slot_base is not None and slot_cc is not None
    assert cc_sim.now > 10 * max(base_sim.now, 1)
    assert cc.pages_converted == 16
    cc.dma_free_bounce(slot_cc)
    assert cc.bounce.used_bytes == 0


def test_encrypt_noop_in_base_mode():
    sim = Simulator()
    guest = GuestContext(sim, SystemConfig.base())
    run(guest.encrypt(units.MiB), sim)
    assert sim.now == 0


def test_encrypt_matches_throughput_model_under_cc():
    sim = Simulator()
    config = SystemConfig.confidential()
    guest = GuestContext(sim, config)
    run(guest.encrypt(units.MiB), sim)
    # 1 MiB at 3.36 GB/s is ~312 us.
    assert sim.now == pytest.approx(units.us(312), rel=0.05)


def test_jitter_seeded_and_bounded():
    sim = Simulator()
    guest = GuestContext(sim, SystemConfig.base())
    values = [guest.jitter(units.us(10), 0.14) for _ in range(200)]
    assert all(v > 0 for v in values)
    mean = sum(values) / len(values)
    assert units.us(8) < mean < units.us(13)
    # Deterministic across same-seed contexts.
    guest2 = GuestContext(Simulator(), SystemConfig.base())
    assert [guest2.jitter(units.us(10), 0.14) for _ in range(5)] == values[:5]


# --- call-stack recorder ---------------------------------------------------


def test_callstack_records_nested_frames():
    rec = CallStackRecorder()
    with rec.frame("a"):
        with rec.frame("b"):
            rec.record(100)
        rec.record(50)
    assert rec.samples == {("a", "b"): 100, ("a",): 50}
    assert rec.total_ns() == 150


def test_callstack_inclusive():
    rec = CallStackRecorder()
    with rec.frame("launch"):
        with rec.frame("tdx_hypercall"):
            rec.record(70)
        rec.record(30)
    assert rec.inclusive_ns("tdx_hypercall") == 70
    assert rec.inclusive_ns("launch") == 100


def test_callstack_folded_format():
    rec = CallStackRecorder()
    with rec.frame("x"):
        with rec.frame("y"):
            rec.record(42)
    assert rec.folded() == ["x;y 42"]


def test_callstack_empty_stack_goes_to_root():
    rec = CallStackRecorder()
    rec.record(10)
    assert rec.samples == {("<root>",): 10}


def test_callstack_ignores_nonpositive():
    rec = CallStackRecorder()
    rec.record(0)
    rec.record(-5)
    assert rec.total_ns() == 0
