"""SHA-256 / HMAC-SHA256 / HKDF tests against published vectors."""

import hashlib
import hmac as std_hmac

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.sha256 import hkdf_expand, hmac_sha256, sha256


# FIPS 180-4 / NIST examples.
SHA_VECTORS = [
    (b"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
    (b"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
    (
        b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
    ),
    (b"a" * 1_000_00, None),  # compared against hashlib below
]


@pytest.mark.parametrize("message,digest_hex", SHA_VECTORS)
def test_sha256_known_answers(message, digest_hex):
    expected = digest_hex or hashlib.sha256(message).hexdigest()
    assert sha256(message).hex() == expected


def test_sha256_padding_boundaries():
    # Lengths around the 55/56/64-byte padding boundaries.
    for length in (54, 55, 56, 57, 63, 64, 65, 119, 120):
        message = bytes(range(length % 256)) * (length // max(length % 256, 1) + 1)
        message = message[:length]
        assert sha256(message) == hashlib.sha256(message).digest()


# RFC 4231 test case 2.
def test_hmac_rfc4231():
    key = b"Jefe"
    message = b"what do ya want for nothing?"
    expected = (
        "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    )
    assert hmac_sha256(key, message).hex() == expected


def test_hmac_long_key_hashed_first():
    key = b"K" * 200  # > block size, must be pre-hashed
    message = b"payload"
    assert hmac_sha256(key, message) == std_hmac.new(
        key, message, hashlib.sha256
    ).digest()


# RFC 5869 test case 1 (Expand step).
def test_hkdf_rfc5869_case1():
    prk = bytes.fromhex(
        "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
    )
    info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
    okm = hkdf_expand(prk, info, 42)
    assert okm.hex() == (
        "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
        "34007208d5b887185865"
    )


def test_hkdf_length_limit():
    with pytest.raises(ValueError):
        hkdf_expand(b"\x00" * 32, b"", 256 * 32)


@settings(max_examples=40, deadline=None)
@given(message=st.binary(max_size=300))
def test_sha256_matches_hashlib(message):
    assert sha256(message) == hashlib.sha256(message).digest()


@settings(max_examples=25, deadline=None)
@given(key=st.binary(min_size=1, max_size=100), message=st.binary(max_size=200))
def test_hmac_matches_stdlib(key, message):
    assert hmac_sha256(key, message) == std_hmac.new(
        key, message, hashlib.sha256
    ).digest()
