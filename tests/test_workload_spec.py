"""Tests for the declarative workload-spec DSL."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.config import SystemConfig
from repro.cuda import Machine, run_app
from repro.workloads import SpecError, WorkloadSpec

MiB = units.MiB

VALID_SPEC = {
    "name": "demo",
    "ops": [
        {"op": "malloc", "name": "A", "bytes": 4 * MiB},
        {"op": "host_alloc", "name": "hA", "bytes": 4 * MiB},
        {"op": "memcpy", "dst": "A", "src": "hA"},
        {
            "op": "loop",
            "count": 5,
            "body": [
                {"op": "launch", "kernel": "k", "duration_us": 50},
                {"op": "sync"},
            ],
        },
        {"op": "memcpy", "dst": "hA", "src": "A", "bytes": MiB},
        {"op": "free", "name": "A"},
        {"op": "free", "name": "hA"},
    ],
}


def _spec(**overrides):
    payload = {**VALID_SPEC, **overrides}
    return WorkloadSpec(payload["name"], payload["ops"])


def test_valid_spec_runs_and_traces():
    spec = _spec()
    trace, _ = run_app(spec.app(), SystemConfig.base())
    assert len(trace.launches()) == 5
    assert len(trace.memcpys()) == 2
    assert spec.total_launches() == 5


def test_spec_runs_under_cc_slower():
    spec = _spec()
    base, _ = run_app(spec.app(), SystemConfig.base())
    cc, _ = run_app(spec.app(), SystemConfig.confidential())
    assert cc.span_ns() > base.span_ns()


def test_spec_json_roundtrip():
    spec = _spec()
    clone = WorkloadSpec.from_json(spec.to_json())
    assert clone.name == spec.name
    assert clone.ops == spec.ops


def test_spec_load_from_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(_spec().to_json())
    loaded = WorkloadSpec.load(str(path))
    assert loaded.total_launches() == 5


def test_managed_touches_fault():
    spec = WorkloadSpec(
        "uvm-demo",
        [
            {"op": "malloc_managed", "name": "M", "bytes": 4 * MiB},
            {
                "op": "launch",
                "kernel": "k",
                "duration_us": 20,
                "touches": [["M", 4 * MiB]],
            },
            {"op": "sync"},
        ],
    )
    trace, _ = run_app(spec.app(), SystemConfig.base())
    assert trace.kernels()[0].attrs["faulted_pages"] > 0


def test_roofline_launch_form():
    spec = WorkloadSpec(
        "roofline",
        [
            {"op": "launch", "kernel": "gemm", "flops": 2e9, "mem_bytes": 1000000},
            {"op": "sync"},
        ],
    )
    trace, _ = run_app(spec.app(), SystemConfig.base())
    # 2 GFLOP at 27 TFLOP/s effective is ~74 us.
    assert units.to_us(trace.kernels()[0].duration_ns) > 50


def test_leaked_buffers_auto_freed():
    spec = WorkloadSpec(
        "leaky",
        [
            {"op": "malloc", "name": "A", "bytes": MiB},
            {"op": "launch", "kernel": "k", "duration_us": 5},
            {"op": "sync"},
        ],
    )
    machine = Machine(SystemConfig.base())
    machine.run(spec.app())
    assert machine.gpu.hbm.used_bytes == 0


@pytest.mark.parametrize(
    "bad_ops,match",
    [
        ([{"op": "warp"}], "unknown op"),
        ([{"nop": 1}], "dict with an 'op' key"),
        ([{"op": "malloc", "name": "A"}], "needs 'name' and int 'bytes'"),
        ([{"op": "malloc", "name": "A", "bytes": 0}], "positive"),
        ([{"op": "memcpy", "dst": "A", "src": "B"}], "not allocated"),
        ([{"op": "launch", "kernel": "k"}], "duration_us or flops"),
        ([{"op": "launch"}], "needs a 'kernel'"),
        ([{"op": "cpu", "us": -1}], "non-negative"),
        ([{"op": "loop", "count": -1, "body": []}], "non-negative int"),
        ([{"op": "free", "name": "X"}], "unknown buffer"),
        (
            [
                {"op": "malloc_managed", "name": "M", "bytes": 1024},
                {"op": "launch", "kernel": "k", "duration_us": 1,
                 "touches": [["X", 10]]},
            ],
            "touches entries",
        ),
    ],
)
def test_validation_errors(bad_ops, match):
    with pytest.raises(SpecError, match=match):
        WorkloadSpec("bad", bad_ops)


def test_bad_json_rejected():
    with pytest.raises(SpecError, match="invalid JSON"):
        WorkloadSpec.from_json("{not json")
    with pytest.raises(SpecError, match="object with 'name'"):
        WorkloadSpec.from_json("[]")


def test_nested_loops_expand():
    spec = WorkloadSpec(
        "nested",
        [
            {
                "op": "loop",
                "count": 3,
                "body": [
                    {
                        "op": "loop",
                        "count": 4,
                        "body": [
                            {"op": "launch", "kernel": "k", "duration_us": 1}
                        ],
                    }
                ],
            },
            {"op": "sync"},
        ],
    )
    assert spec.total_launches() == 12
    trace, _ = run_app(spec.app(), SystemConfig.base())
    assert len(trace.launches()) == 12


@settings(max_examples=25, deadline=None)
@given(
    count=st.integers(min_value=0, max_value=8),
    duration=st.integers(min_value=1, max_value=500),
)
def test_property_launch_count_matches_static(count, duration):
    spec = WorkloadSpec(
        "prop",
        [
            {
                "op": "loop",
                "count": count,
                "body": [{"op": "launch", "kernel": "k", "duration_us": duration}],
            },
            {"op": "sync"},
        ],
    )
    trace, _ = run_app(spec.app(), SystemConfig.base())
    assert len(trace.launches()) == spec.total_launches() == count
