"""Tests for GPU kernel cost models and the UVM subsystem."""

import pytest

from repro import units
from repro.config import SystemConfig
from repro.gpu import (
    CC_KET_FACTOR,
    KernelSpec,
    UVMManager,
    elementwise_kernel,
    gemm_kernel,
    nanosleep_kernel,
)
from repro.sim import Simulator
from repro.tdx import GuestContext


GPU = SystemConfig.base().gpu


# --- kernel cost model ----------------------------------------------------


def test_nanosleep_duration_exact():
    kernel = nanosleep_kernel(units.ms(100))
    assert kernel.base_duration_ns(GPU, cc=False) == units.ms(100)


def test_cc_factor_applied():
    kernel = nanosleep_kernel(units.ms(100))
    ratio = kernel.base_duration_ns(GPU, cc=True) / units.ms(100)
    assert ratio == pytest.approx(CC_KET_FACTOR, rel=1e-6)


def test_gemm_compute_bound_duration():
    kernel = gemm_kernel(4096, 4096, 4096)
    flops = 2 * 4096**3
    expected = flops / (GPU.fp32_flops * GPU.default_efficiency) * 1e9
    assert kernel.base_duration_ns(GPU, cc=False) == pytest.approx(
        expected + GPU.kernel_fixed_ns, rel=0.01
    )


def test_elementwise_memory_bound_duration():
    kernel = elementwise_kernel(10_000_000, flops_per_element=1, bytes_per_element=16)
    bytes_total = 160_000_000
    expected = bytes_total / (GPU.hbm_bw * GPU.default_efficiency) * 1e9
    assert kernel.base_duration_ns(GPU, cc=False) == pytest.approx(
        expected + GPU.kernel_fixed_ns, rel=0.01
    )


def test_gemm_precision_changes_peak():
    fp32 = gemm_kernel(2048, 2048, 2048, precision="fp32")
    fp16 = gemm_kernel(2048, 2048, 2048, precision="fp16")
    assert fp16.base_duration_ns(GPU, False) < fp32.base_duration_ns(GPU, False)


def test_invalid_precision_rejected():
    kernel = KernelSpec(name="bad", flops=1e9, precision="fp13")
    with pytest.raises(ValueError):
        kernel.base_duration_ns(GPU, False)


def test_invalid_efficiency_rejected():
    kernel = KernelSpec(name="bad", flops=1e9, efficiency=1.5)
    with pytest.raises(ValueError):
        kernel.base_duration_ns(GPU, False)


def test_duration_minimum_one_ns():
    kernel = KernelSpec(name="tiny", fixed_duration_ns=0)
    assert kernel.base_duration_ns(GPU, False) >= 1


def test_module_pages_attr_flows_through():
    kernel = elementwise_kernel(100, name="fat", module_pages=200)
    assert kernel.attrs["module_pages"] == 200.0


# --- UVM subsystem ---------------------------------------------------------


def _uvm(config):
    sim = Simulator()
    guest = GuestContext(sim, config)
    return sim, UVMManager(sim, config, guest)


def run(sim, gen):
    return sim.run(until=sim.process(gen))


def test_register_uses_mode_specific_chunk():
    config_base = SystemConfig.base()
    config_cc = SystemConfig.confidential()
    _, uvm_base = _uvm(config_base)
    _, uvm_cc = _uvm(config_cc)
    handle_b = uvm_base.register(units.MiB)
    handle_c = uvm_cc.register(units.MiB)
    assert uvm_base.allocation(handle_b).chunk_bytes == config_base.uvm.migration_chunk_bytes
    assert uvm_cc.allocation(handle_c).chunk_bytes == config_cc.uvm.cc_migration_chunk_bytes


def test_gpu_touch_migrates_then_free():
    sim, uvm = _uvm(SystemConfig.base())
    handle = uvm.register(4 * units.MiB)
    migrated, elapsed = run(sim, uvm.gpu_touch(handle, 4 * units.MiB))
    assert migrated == 4 * units.MiB
    assert elapsed > 0
    # Resident now: no second migration.
    migrated2, elapsed2 = run(sim, uvm.gpu_touch(handle, 4 * units.MiB))
    assert migrated2 == 0
    assert elapsed2 == 0


def test_cpu_touch_evicts_back():
    sim, uvm = _uvm(SystemConfig.base())
    handle = uvm.register(2 * units.MiB)
    run(sim, uvm.gpu_touch(handle, 2 * units.MiB))
    moved, elapsed = run(sim, uvm.cpu_touch(handle, units.MiB))
    assert moved == units.MiB
    assert elapsed > 0
    # The evicted prefix must fault again on the GPU.
    migrated, _ = run(sim, uvm.gpu_touch(handle, 2 * units.MiB))
    assert migrated == units.MiB


def test_cc_migration_much_slower_per_byte():
    base_sim, base_uvm = _uvm(SystemConfig.base())
    cc_sim, cc_uvm = _uvm(SystemConfig.confidential())
    hb = base_uvm.register(4 * units.MiB)
    hc = cc_uvm.register(4 * units.MiB)
    _, t_base = run(base_sim, base_uvm.gpu_touch(hb, 4 * units.MiB))
    _, t_cc = run(cc_sim, cc_uvm.gpu_touch(hc, 4 * units.MiB))
    assert t_cc > 20 * t_base


def test_fault_counting_batches_in_base_mode():
    sim, uvm = _uvm(SystemConfig.base())
    handle = uvm.register(4 * units.MiB)
    run(sim, uvm.gpu_touch(handle, 4 * units.MiB))
    # Prefetch migrates per VA block (2 MiB): two batches.
    assert uvm.total_faults == 2


def test_fault_counting_per_chunk_under_cc():
    config = SystemConfig.confidential()
    sim, uvm = _uvm(config)
    handle = uvm.register(units.MiB)
    run(sim, uvm.gpu_touch(handle, units.MiB))
    assert uvm.total_faults == units.MiB // config.uvm.cc_migration_chunk_bytes


def test_partial_touch_prefix_semantics():
    sim, uvm = _uvm(SystemConfig.base())
    handle = uvm.register(8 * units.MiB)
    migrated, _ = run(sim, uvm.gpu_touch(handle, 2 * units.MiB))
    assert migrated == 2 * units.MiB
    migrated2, _ = run(sim, uvm.gpu_touch(handle, 8 * units.MiB))
    assert migrated2 == 6 * units.MiB


def test_unregister_removes_tracking():
    _, uvm = _uvm(SystemConfig.base())
    handle = uvm.register(units.MiB)
    uvm.unregister(handle)
    with pytest.raises(KeyError):
        uvm.allocation(handle)
