"""Cluster-scale serving tests (repro.serve.cluster + parallelism).

Pins the contracts the figure and the CI gates rely on:

* **exact reduction** — a single-replica tp=1/pp=1 cluster produces
  the same report, engine stats, and elapsed time as
  :func:`repro.serve.run_scenario`, byte-for-byte (the float-identity
  invariant: the merged report must keep engine outcome order),
* verdict JSON byte-determinism across repeated runs,
* model parallelism: TP all-reduces ride the secure peer links (CC
  pays more than base, cost grows with degree), PP bridges cross the
  serialized host bridge, and the stats keys appear only for
  non-trivial topologies (golden safety),
* the router: placement policies split load the way they claim, and
  the autoscaler's scale-up relief arrives *later* under CC because a
  fresh replica pays a full simulated SPDM attestation first,
* spec validation and the single-replica-only telemetry restriction.
"""

import pytest

from repro import units
from repro.config import SystemConfig
from repro.serve import (
    ClusterError,
    ClusterSpec,
    ParallelismSpec,
    ScenarioSpec,
    cluster_verdict_json,
    measure_attestation_ns,
    run_cluster,
    run_scenario,
)

NS_PER_SEC = units.NS_PER_SEC

#: Short, busy scenario shared by most tests.
SHORT = dict(rate_rps=16.0, duration_ns=NS_PER_SEC // 2, seed=7)


def _spec(**kw):
    scenario = ScenarioSpec(**{**SHORT, **kw.pop("scenario", {})})
    return ClusterSpec(scenario=scenario, **kw)


# -- exact reduction ---------------------------------------------------------


@pytest.mark.parametrize("config", [
    SystemConfig.base(), SystemConfig.confidential(),
], ids=["base", "cc"])
def test_single_replica_cluster_reduces_to_run_scenario(config):
    scenario = ScenarioSpec(**SHORT)
    _, sres = run_scenario(scenario, config)
    _, cres = run_cluster(ClusterSpec(scenario=scenario), config)
    assert cres.report == sres.report
    assert cres.replicas[0].engine.stats == sres.engine.stats
    assert cres.elapsed_ns == sres.engine.elapsed_ns
    assert cres.arrival_digest == sres.arrival_digest
    assert cres.router["ingress_ns"] == 0


def test_cluster_verdict_json_is_byte_deterministic():
    spec = _spec(replicas=2, placement="least-loaded")
    config = SystemConfig.confidential()
    payloads = [
        cluster_verdict_json(run_cluster(spec, config)[1])
        for _ in range(2)
    ]
    assert payloads[0] == payloads[1]
    assert '"command": "serve-cluster"' in payloads[0]


# -- model parallelism -------------------------------------------------------


def test_trivial_topology_adds_no_stats_keys():
    _, result = run_cluster(_spec(), SystemConfig.confidential())
    stats = result.replicas[0].engine.stats
    for key in ("tp_degree", "pp_stages", "tp_comm_ns", "pp_comm_ns"):
        assert key not in stats


def test_tp_comm_is_taxed_by_cc_links():
    comm = {}
    for mode, config in (
        ("base", SystemConfig.base()),
        ("cc", SystemConfig.confidential()),
    ):
        _, result = run_cluster(_spec(tp=2), config)
        stats = result.replicas[0].engine.stats
        assert stats["tp_degree"] == 2
        comm[mode] = stats["tp_comm_ns"]
    assert comm["base"] > 0
    # Base rides plaintext links; CC pays counter/MAC metadata and the
    # per-chunk crypto tail on every ring step.
    assert comm["cc"] > comm["base"]


def test_pp_bridge_pays_the_serialized_host_bridge():
    comm = {}
    for mode, config in (
        ("base", SystemConfig.base()),
        ("cc", SystemConfig.confidential()),
    ):
        _, result = run_cluster(_spec(pp=2), config)
        stats = result.replicas[0].engine.stats
        assert stats["pp_stages"] == 2
        comm[mode] = stats["pp_comm_ns"]
    assert comm["base"] > 0
    assert comm["cc"] > comm["base"]


def test_parallelism_spec_rejects_bad_topologies():
    with pytest.raises(ValueError):
        ParallelismSpec(tp=3).validate()
    with pytest.raises(ValueError):
        ParallelismSpec(tp=4, pp=4).validate()
    with pytest.raises(ValueError):
        ParallelismSpec(link_policy="quantum").validate()


# -- the router --------------------------------------------------------------


def test_round_robin_splits_load_evenly():
    _, result = run_cluster(
        _spec(replicas=3), SystemConfig.base()
    )
    counts = result.router["replica_requests"]
    assert sorted(counts) == ["0", "1", "2"]
    assert max(counts.values()) - min(counts.values()) <= 1


def test_kv_affinity_pins_tenants_until_overload():
    spec = _spec(
        replicas=3, placement="kv-affinity",
        scenario=dict(tenants=2),
    )
    _, result = run_cluster(spec, SystemConfig.base())
    counts = result.router["replica_requests"]
    # Two tenants over three replicas: stickiness leaves at least one
    # replica idle unless overload forced a spill.
    if result.router["affinity_spills"] == 0:
        assert min(counts.values()) == 0
    assert sum(counts.values()) == result.requests


def test_router_ingress_is_pricier_under_cc():
    base = run_cluster(_spec(replicas=2), SystemConfig.base())[1]
    cc = run_cluster(_spec(replicas=2), SystemConfig.confidential())[1]
    # CC placement pays a TD transition on top of the router work.
    assert cc.router["ingress_ns"] > base.router["ingress_ns"]


def test_autoscaler_relief_is_slower_under_cc():
    ready = {}
    for mode, config in (
        ("base", SystemConfig.base()),
        ("cc", SystemConfig.confidential()),
    ):
        spec = _spec(
            replicas=1, autoscale_max=3, placement="least-loaded",
            scenario=dict(rate_rps=32.0, duration_ns=2 * NS_PER_SEC,
                          seed=42),
        )
        _, result = run_cluster(spec, config)
        ups = [e for e in result.router["autoscale_events"]
               if e["action"] == "scale-up"]
        assert ups, f"{mode}: overload never triggered a scale-up"
        ready[mode] = ups[0]["ready_ms"] - ups[0]["at_ms"]
        assert result.router["replicas_final"] > 1
    assert measure_attestation_ns(SystemConfig.confidential()) > \
        measure_attestation_ns(SystemConfig.base())
    assert ready["cc"] > ready["base"]


# -- validation --------------------------------------------------------------


def test_cluster_spec_validation():
    with pytest.raises(ClusterError):
        _spec(replicas=0).validate()
    with pytest.raises(ClusterError):
        _spec(placement="random").validate()
    with pytest.raises(ClusterError):
        _spec(replicas=3, autoscale_max=2).validate()
    with pytest.raises(ValueError):
        _spec(tp=5).validate()


def test_telemetry_requires_single_replica():
    with pytest.raises(ClusterError):
        run_cluster(_spec(replicas=2), SystemConfig.base(),
                    telemetry=True)
    # Single replica with a non-trivial topology is fine.
    _, result = run_cluster(
        _spec(tp=2), SystemConfig.confidential(), telemetry=True
    )
    assert result.attributions
