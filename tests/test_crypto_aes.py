"""AES block cipher tests against FIPS-197 known-answer vectors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import AES


# FIPS-197 Appendix C known-answer tests.
FIPS_VECTORS = [
    (
        "000102030405060708090a0b0c0d0e0f",
        "00112233445566778899aabbccddeeff",
        "69c4e0d86a7b0430d8cdb78070b4c55a",
    ),
    (
        "000102030405060708090a0b0c0d0e0f1011121314151617",
        "00112233445566778899aabbccddeeff",
        "dda97ca4864cdfe06eaf70a0ec0d7191",
    ),
    (
        "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
        "00112233445566778899aabbccddeeff",
        "8ea2b7ca516745bfeafc49904b496089",
    ),
]


@pytest.mark.parametrize("key_hex,pt_hex,ct_hex", FIPS_VECTORS)
def test_fips197_known_answers(key_hex, pt_hex, ct_hex):
    cipher = AES(bytes.fromhex(key_hex))
    ct = cipher.encrypt_block(bytes.fromhex(pt_hex))
    assert ct.hex() == ct_hex
    assert cipher.decrypt_block(ct).hex() == pt_hex


def test_aes128_nist_sp800_38a_block():
    # NIST SP 800-38A F.1.1 ECB-AES128 block 1.
    cipher = AES(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
    ct = cipher.encrypt_block(bytes.fromhex("6bc1bee22e409f96e93d7e117393172a"))
    assert ct.hex() == "3ad77bb40d7a3660a89ecaf32466ef97"


def test_invalid_key_length_rejected():
    with pytest.raises(ValueError):
        AES(b"short")


def test_invalid_block_length_rejected():
    cipher = AES(b"\x00" * 16)
    with pytest.raises(ValueError):
        cipher.encrypt_block(b"\x00" * 15)
    with pytest.raises(ValueError):
        cipher.decrypt_block(b"\x00" * 17)


@settings(max_examples=25, deadline=None)
@given(
    key=st.binary(min_size=16, max_size=16)
    | st.binary(min_size=24, max_size=24)
    | st.binary(min_size=32, max_size=32),
    block=st.binary(min_size=16, max_size=16),
)
def test_encrypt_decrypt_roundtrip(key, block):
    cipher = AES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@settings(max_examples=10, deadline=None)
@given(key=st.binary(min_size=16, max_size=16), block=st.binary(min_size=16, max_size=16))
def test_encryption_is_permutation_not_identity_generally(key, block):
    # A block cipher output must differ from input for almost all inputs;
    # we only assert determinism and length here, identity is allowed in
    # principle for rare fixed points.
    cipher = AES(key)
    ct1 = cipher.encrypt_block(block)
    ct2 = cipher.encrypt_block(block)
    assert ct1 == ct2
    assert len(ct1) == 16
