"""Tests for the command-line interface."""

import pathlib

import pytest

from repro.cli import main


def test_apps_lists_catalogue(capsys):
    assert main(["apps"]) == 0
    out = capsys.readouterr().out
    assert "sc" in out
    assert "polybench" in out


def test_run_base(capsys):
    assert main(["run", "2mm"]) == 0
    out = capsys.readouterr().out
    assert "2mm [base]" in out
    assert "KLR" in out
    assert "P predicted" in out


def test_run_cc_uvm(capsys):
    assert main(["run", "2dconv", "--cc", "--uvm"]) == 0
    out = capsys.readouterr().out
    assert "2dconv [cc uvm]" in out


def test_run_teeio(capsys):
    assert main(["run", "2mm", "--cc", "--teeio"]) == 0
    assert "cc+teeio" in capsys.readouterr().out


def test_run_writes_chrome_trace(tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    assert main(["run", "2mm", "--trace", str(trace_path)]) == 0
    content = trace_path.read_text()
    assert '"traceEvents"' in content
    assert "mm_kernel1" in content


def test_run_rejects_unknown_app():
    with pytest.raises(SystemExit):
        main(["run", "not-an-app"])


def test_figures_single(tmp_path, capsys):
    assert main(["figures", "fig04b", "--out", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "fig04b_crypto" in out
    assert (tmp_path / "fig04b_crypto.json").exists()
    assert (tmp_path / "fig04b_crypto.txt").exists()


def test_figures_extension(tmp_path, capsys):
    assert main(["figures", "teeio", "--out", str(tmp_path)]) == 0
    assert (tmp_path / "ext_teeio.json").exists()


def test_figures_unknown_id(tmp_path, capsys):
    assert main(["figures", "fig99", "--out", str(tmp_path)]) == 2


def test_bandwidth_table(capsys):
    assert main(["bandwidth", "--sizes", "4096", "1048576"]) == 0
    out = capsys.readouterr().out
    assert "pinned" in out
    assert "GB_per_s" in out


def test_observations_subset(capsys):
    assert main(["observations", "1", "2"]) == 0
    out = capsys.readouterr().out
    assert "Observation 1: HOLDS" in out
    assert "Observation 2: HOLDS" in out


def test_analyze_roundtrip(tmp_path, capsys):
    trace_path = tmp_path / "t.json"
    assert main(["run", "sc", "--trace", str(trace_path)]) == 0
    capsys.readouterr()
    assert main(["analyze", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "launches 1611" in out
    assert "KLR" in out
    assert "P predicted" in out


def test_whatif_overrides(capsys):
    assert main([
        "whatif", "2mm",
        "--set", "tdx.td_hypercall_ns=1300",
        "--set", "tdx.teeio=true",
    ]) == 0
    out = capsys.readouterr().out
    assert "cc+overrides" in out
    assert "faster" in out


def test_whatif_rejects_bad_setting():
    with pytest.raises(SystemExit):
        main(["whatif", "2mm", "--set", "nonsense"])
    with pytest.raises(SystemExit):
        main(["whatif", "2mm", "--set", "tdx.not_a_field=1"])


def test_attest_cc(capsys):
    assert main(["attest", "--cc"]) == 0
    out = capsys.readouterr().out
    assert "SPDM session established (TD)" in out
    assert "session key" in out


# --- fault-injection flags and error handling ------------------------------


def test_run_seed_flag(capsys):
    assert main(["run", "2mm", "--seed", "7"]) == 0
    assert "2mm [base]" in capsys.readouterr().out


def test_run_fault_rate(capsys):
    assert main(["run", "srad", "--cc", "--fault-rate", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "faults   injected" in out
    assert "of D: recovery" in out


def test_run_fault_plan_file(tmp_path, capsys):
    plan = tmp_path / "plan.json"
    plan.write_text('{"sites": {"crypto.gcm_tag": {"schedule": [0]}}}')
    assert main(["run", "srad", "--cc", "--fault-plan", str(plan)]) == 0
    assert "faults   injected 1" in capsys.readouterr().out


def test_run_fault_plan_missing_file():
    with pytest.raises(SystemExit, match="fault-plan"):
        main(["run", "2mm", "--fault-plan", "/no/such/plan.json"])


def test_run_fault_plan_and_rate_conflict(tmp_path):
    plan = tmp_path / "plan.json"
    plan.write_text('{"sites": {}}')
    with pytest.raises(SystemExit, match="mutually exclusive"):
        main(["run", "2mm", "--fault-plan", str(plan), "--fault-rate", "0.1"])


def test_run_fault_rate_out_of_range():
    with pytest.raises(SystemExit, match="fault-rate"):
        main(["run", "2mm", "--fault-rate", "-0.1"])
    with pytest.raises(SystemExit, match="fault-rate"):
        main(["run", "2mm", "--fault-rate", "1.5"])


def test_faults_report(capsys):
    assert main(["faults", "srad", "--cc", "--fault-rate", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "fault report: srad [cc]" in out
    assert "crypto.gcm_tag" in out
    assert "recovery" in out


def test_faults_report_defaults_to_visible_rate(capsys):
    assert main(["faults", "srad", "--cc"]) == 0
    assert "injected" in capsys.readouterr().out


def test_fatal_fault_exits_nonzero_with_diagnostic(tmp_path, capsys):
    plan = tmp_path / "plan.json"
    plan.write_text(
        '{"sites": {"crypto.gcm_tag": {"schedule": [0, 1, 2, 3, 4, 5]}}}'
    )
    assert main(["run", "srad", "--cc", "--fault-plan", str(plan)]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error: FatalCudaFault:")
    assert err.count("\n") == 1  # one-line diagnostic, no traceback


def test_oom_exits_nonzero_with_diagnostic(capsys, monkeypatch):
    from repro.mem.allocator import OutOfMemoryError
    import repro.cli as cli

    def boom(_args):
        raise OutOfMemoryError("HBM exhausted")

    monkeypatch.setitem(cli._COMMANDS, "run", boom)
    assert main(["run", "2mm"]) == 1
    assert "error: OutOfMemoryError" in capsys.readouterr().err


def test_serve_prints_summary(capsys):
    assert main(["serve", "--rate", "8", "--duration", "500ms"]) == 0
    out = capsys.readouterr().out
    assert "serve[base] policy=fcfs rate=8" in out
    assert "goodput" in out
    assert "ttft p50/p99" in out


def test_serve_cc_flag(capsys):
    assert main(["serve", "--rate", "8", "--duration", "250ms", "--cc"]) == 0
    assert "serve[cc]" in capsys.readouterr().out


def test_serve_verdict_is_byte_deterministic(tmp_path, capsys):
    args = ["serve", "--rate", "8", "--duration", "500ms",
            "--policy", "fcfs", "--seed", "42"]
    first = tmp_path / "v1.json"
    second = tmp_path / "v2.json"
    assert main(args + ["--verdict", str(first)]) == 0
    assert main(args + ["--verdict", str(second)]) == 0
    assert first.read_bytes() == second.read_bytes()
    payload = first.read_text()
    assert '"command": "serve"' in payload
    assert '"arrival_digest"' in payload


def test_serve_writes_chrome_trace(tmp_path, capsys):
    trace_path = tmp_path / "serve.json"
    assert main(["serve", "--rate", "8", "--duration", "250ms",
                 "--trace", str(trace_path)]) == 0
    content = trace_path.read_text()
    assert '"traceEvents"' in content
    assert "serve.queue_depth" in content


def test_serve_rejects_bad_duration():
    with pytest.raises(SystemExit, match="duration"):
        main(["serve", "--duration", "fast"])


@pytest.mark.parametrize(
    "flags",
    [
        ["--rate", "0"],
        ["--rate", "-3"],
        ["--rate", "lots"],
        ["--tenants", "0"],
        ["--tenants", "-1"],
        ["--seed", "-1"],
        ["--max-queue-depth", "-2"],
        ["--deadline", "-10"],
    ],
)
def test_serve_rejects_bad_values_at_argparse_level(flags, capsys):
    # Typed exit code 2 (argparse usage error), before any simulation.
    with pytest.raises(SystemExit) as exc:
        main(["serve"] + flags)
    assert exc.value.code == 2
    assert "usage:" in capsys.readouterr().err


SERVE_PLAN = str(
    pathlib.Path(__file__).resolve().parent.parent
    / "examples" / "serve_fault_plan.json"
)


def test_serve_fault_plan_run(tmp_path, capsys):
    verdict = tmp_path / "faults.json"
    assert main([
        "serve", "--rate", "8", "--duration", "250ms", "--cc",
        "--fault-plan", SERVE_PLAN, "--seed", "7",
        "--shed-policy", "pushback", "--circuit-breaker",
        "--max-queue-depth", "32", "--deadline", "3000",
        "--ttft-timeout", "800", "--verdict", str(verdict),
    ]) == 0
    payload = verdict.read_text()
    assert '"active": true' in payload
    assert '"shed_policy": "pushback"' in payload


def test_serve_rejects_conflicting_fault_flags():
    with pytest.raises(SystemExit, match="mutually exclusive"):
        main(["serve", "--fault-plan", SERVE_PLAN,
              "--fault-rate", "0.01"])


@pytest.mark.parametrize(
    "flags",
    [
        # Degradation flags that used to parse cleanly and then be
        # silently ignored now exit 2 at parse time.
        ["--circuit-breaker"],
        ["--deadline", "100"],
        ["--ttft-timeout", "50"],
        ["--shed-policy", "deadline"],
        ["--max-queue-depth", "8"],
        ["--shed-policy", "pushback"],
        # Contradictory cluster topologies.
        ["--tp", "3"],
        ["--tp", "4", "--pp", "4"],
        ["--replicas", "3", "--autoscale-max", "2"],
        ["--link-policy", "batched"],
        ["--placement", "kv-affinity"],
        ["--replicas", "2", "--telemetry"],
    ],
)
def test_serve_rejects_contradictory_flags(flags, capsys):
    with pytest.raises(SystemExit) as exc:
        main(["serve"] + flags)
    assert exc.value.code == 2
    assert "usage:" in capsys.readouterr().err


def test_serve_report_rejects_contradictory_flags(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["serve", "report", "--circuit-breaker"])
    assert exc.value.code == 2
    assert "usage:" in capsys.readouterr().err


# -- the cluster path -------------------------------------------------------


def test_serve_cluster_verdict_is_byte_deterministic(tmp_path, capsys):
    args = ["serve", "--rate", "16", "--duration", "250ms", "--cc",
            "--replicas", "2", "--placement", "least-loaded"]
    first = tmp_path / "c1.json"
    second = tmp_path / "c2.json"
    assert main(args + ["--verdict", str(first)]) == 0
    assert main(args + ["--verdict", str(second)]) == 0
    assert first.read_bytes() == second.read_bytes()
    payload = first.read_text()
    assert '"command": "serve-cluster"' in payload
    assert "serve-cluster[cc]" in capsys.readouterr().out


def test_serve_cluster_tp_trace_single_replica(tmp_path, capsys):
    trace_path = tmp_path / "tp.json"
    assert main(["serve", "--rate", "8", "--duration", "250ms", "--cc",
                 "--tp", "2", "--trace", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "tp=2" in out
    assert "tp_comm" in out
    assert trace_path.exists()


# -- serving telemetry flags and the report subcommand ---------------------


def test_serve_telemetry_flag_keeps_verdict_bytes(tmp_path, capsys):
    args = ["serve", "--rate", "8", "--duration", "250ms",
            "--cc", "--seed", "42"]
    plain = tmp_path / "plain.json"
    telem = tmp_path / "telem.json"
    assert main(args + ["--verdict", str(plain)]) == 0
    assert main(args + ["--telemetry", "--verdict", str(telem)]) == 0
    # zero perturbation: telemetry must not move the verdict by a byte
    assert plain.read_bytes() == telem.read_bytes()


def test_serve_requests_out_jsonl_deterministic(tmp_path, capsys):
    args = ["serve", "--rate", "8", "--duration", "250ms",
            "--cc", "--seed", "42"]
    first = tmp_path / "r1.jsonl"
    second = tmp_path / "r2.jsonl"
    assert main(args + ["--requests-out", str(first)]) == 0
    assert main(args + ["--requests-out", str(second)]) == 0
    assert first.read_bytes() == second.read_bytes()
    import json as _json

    records = [
        _json.loads(line) for line in first.read_text().splitlines()
    ]
    assert records
    for record in records:
        component_sum = sum(
            v for k, v in record.items() if k.startswith("c_")
        )
        assert component_sum == record["e2e_ns"]


def test_serve_requests_out_csv(tmp_path, capsys):
    out = tmp_path / "requests.csv"
    assert main(["serve", "--rate", "8", "--duration", "250ms",
                 "--requests-out", str(out)]) == 0
    lines = out.read_text().splitlines()
    assert lines[0].startswith("req_id,")
    assert len(lines) > 1


def test_serve_report_prints_forensics(capsys):
    assert main(["serve", "report", "--rate", "8", "--duration",
                 "250ms", "--cc", "--top", "3", "--by-tenant"]) == 0
    out = capsys.readouterr().out
    assert "slowest requests" in out
    assert "ttft p99" in out
    assert "tenant" in out


def test_serve_report_diff_attributes_delta(capsys):
    assert main(["serve", "report", "--rate", "8", "--duration",
                 "250ms", "--cc", "--diff"]) == 0
    out = capsys.readouterr().out
    assert "base" in out and "cc" in out
    assert "dominant" in out


def test_serve_report_diff_requires_cc():
    with pytest.raises(SystemExit, match="--diff"):
        main(["serve", "report", "--rate", "8", "--duration",
              "250ms", "--diff"])
