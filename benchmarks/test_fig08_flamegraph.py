"""Fig. 8: cudaLaunchKernel call stack inside a TD."""

from repro.figures import fig08_flamegraph


def test_fig08(figure_runner):
    result = figure_runner(fig08_flamegraph.generate)
    stacks = "\n".join(row[0] for row in result.rows)
    # The frames the paper's flame graph highlights must appear.
    for frame in (
        "cudaLaunchKernel",
        "dma_direct_alloc",
        "set_memory_decrypted",
        "tdx_module.__seamcall",
        "cuModuleLoad",
    ):
        assert frame in stacks, frame
    shares = {c["metric"]: c["measured"] for c in result.comparisons}
    assert shares["share of launch in set_memory_decrypted (qualitative: large)"] > 0.3
