"""Fig. 4a: PCIe bandwidth vs transfer size."""

from conftest import assert_comparisons

from repro.figures import fig04_bandwidth


def test_fig04a(figure_runner):
    result = figure_runner(fig04_bandwidth.generate_4a)
    assert_comparisons(result, rel_tol=0.10)
    # Shape checks over the full curve.
    by_key = {}
    for size, memory, direction, mode, gbps in result.rows:
        by_key[(size, memory, direction, mode)] = gbps
    sizes = sorted({row[0] for row in result.rows})
    # Monotone non-decreasing with size for every configuration.
    for memory in ("pageable", "pinned"):
        for mode in ("base", "cc"):
            curve = [by_key[(s, memory, "h2d", mode)] for s in sizes]
            assert all(b >= a * 0.99 for a, b in zip(curve, curve[1:]))
    largest = sizes[-1]
    # Base: pinned >> pageable; CC: near-identical (Observation 1).
    assert by_key[(largest, "pinned", "h2d", "base")] > 1.5 * by_key[
        (largest, "pageable", "h2d", "base")
    ]
    cc_pin = by_key[(largest, "pinned", "h2d", "cc")]
    cc_page = by_key[(largest, "pageable", "h2d", "cc")]
    assert abs(cc_pin - cc_page) / cc_page < 0.1
