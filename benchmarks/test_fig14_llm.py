"""Fig. 14: Llama-3-8B serving speedups (vLLM vs HF, BF16 vs AWQ, CC)."""

from repro.figures import fig14_llm


def test_fig14(figure_runner):
    result = figure_runner(fig14_llm.generate)
    checks = {c["metric"]: c["measured"] for c in result.comparisons}
    # The paper's three Fig. 14 claims.
    assert checks["all vLLM speedups > 1 (fraction)"] == 1.0
    assert checks["AWQ > BF16 at batch <= 32"] == 1.0
    assert checks["BF16 >= AWQ at batch 64/128"] == 1.0
    assert checks["CC-on <= CC-off (fraction of cells)"] >= 0.9
