"""Extension experiments: the paper's flagged future-work directions,
answered on the simulator (see repro.figures.extensions)."""

from repro import units
from repro.config import SystemConfig
from repro.cuda import run_app
from repro.figures import extensions
from repro.gpu import nanosleep_kernel


def _obs_probe_app(rt):
    """Touches every instrumented path: mgmt, copies, launches, UVM."""
    dev = yield from rt.malloc(8 * units.MiB)
    host = yield from rt.host_alloc(8 * units.MiB)
    managed = yield from rt.malloc_managed(4 * units.MiB)
    yield from rt.memcpy(dev, host)
    for _ in range(3):
        kernel = nanosleep_kernel(units.us(40), name="probe")
        yield from rt.launch(
            kernel, managed_touches=[(managed, 4 * units.MiB)]
        )
        yield from rt.synchronize()
    yield from rt.memcpy(host, dev)
    yield from rt.free(managed)
    yield from rt.free(dev)
    yield from rt.free(host)


def test_observability_is_zero_overhead():
    """Tracing on vs off: identical simulated timings, event for event.

    Spans and metrics are pure bookkeeping — they must never touch the
    simulation clock, in either security mode.
    """
    for config_factory in (SystemConfig.base, SystemConfig.confidential):
        on, _ = run_app(_obs_probe_app, config_factory(), observe=True)
        off, _ = run_app(_obs_probe_app, config_factory(), observe=False)
        assert len(on.spans) > 0 and len(on.metrics) > 0
        assert len(off.spans) == 0 and len(off.metrics) == 0
        assert off.span_ns() == on.span_ns()
        assert [
            (e.kind, e.name, e.start_ns, e.duration_ns) for e in off.events
        ] == [
            (e.kind, e.name, e.start_ns, e.duration_ns) for e in on.events
        ]


def test_ext_teeio(figure_runner):
    result = figure_runner(extensions.generate_teeio)
    checks = {c["metric"]: c["measured"] for c in result.comparisons}
    # TEE-IO restores near-native transfer bandwidth...
    assert checks["teeio recovers transfer bandwidth (teeio/base, ~0.9+)"] > 0.9
    # ...but leaves a substantial non-transfer CC tax in place.
    removed = checks["teeio end-to-end vs cc (fraction of CC slowdown removed)"]
    assert 0.4 < removed < 0.9


def test_ext_crypto_scaling(figure_runner):
    result = figure_runner(extensions.generate_crypto_scaling)
    checks = {c["metric"]: c["measured"] for c in result.comparisons}
    assert checks["2-thread speedup over 1 thread"] > 1.5
    assert checks["8-thread CC bandwidth / base bandwidth (still < 1)"] < 0.9
    # Bandwidth is monotone in thread count.
    bw = [row[1] for row in result.rows]
    assert all(b >= a for a, b in zip(bw, bw[1:]))


def test_ext_graph_fusion_cc(figure_runner):
    result = figure_runner(extensions.generate_graph_fusion_cc)
    checks = {c["metric"]: c["measured"] for c in result.comparisons}
    # Answer to the paper's open question: the optimum does not move
    # toward smaller batches under CC.
    assert checks["CC optimal batch >= base optimal batch"] == 1.0
    # CC benefits more from batching than base does.
    times = {(row[0], row[1]): row[2] for row in result.rows}
    gain_base = times[("base", 1)] / times[("base", 64)]
    gain_cc = times[("cc", 1)] / times[("cc", 64)]
    assert gain_cc > gain_base


def test_ext_oversubscription(figure_runner):
    result = figure_runner(extensions.generate_oversubscription)
    checks = {c["metric"]: c["measured"] for c in result.comparisons}
    assert checks["CC thrash blowup at 1.8x oversubscription (vs in-budget CC)"] > 100
    assert checks["CC/base steady-state ratio while thrashing"] > 10
    # Within budget, CC and base UVM kernels run at the same speed
    # (data resident, Observation 5's non-UVM result recovered).
    kets = {(row[0], row[1]): row[2] for row in result.rows}
    assert abs(kets[(0.5, "cc")] - kets[(0.5, "base")]) / kets[(0.5, "base")] < 0.02


def test_ext_multigpu(figure_runner):
    result = figure_runner(extensions.generate_multigpu)
    checks = {c["metric"]: c["measured"] for c in result.comparisons}
    assert checks["batched / plaintext all-reduce bandwidth (8 GPUs, 1 GB)"] > 0.9
    assert checks["naive / plaintext all-reduce bandwidth (8 GPUs, 1 GB)"] < 0.75
    # Ordering holds at every homogeneous (gpus, size) point.
    cells = {(row[0], row[1], row[2]): row[4] for row in result.rows}
    for (gpus, size, security), bw in cells.items():
        if gpus == "2x2-hier" or security != "none":
            continue
        assert bw >= cells[(gpus, size, "batched")] >= cells[(gpus, size, "naive")]
    # Hierarchical NVL topology: the CC PCIe bridge dominates.
    assert checks["CC tax on cross-island (hier cc/base, 2x2 NVL pairs)"] > 3


def test_ext_distributed_training(figure_runner):
    result = figure_runner(extensions.generate_distributed_training)
    checks = {c["metric"]: c["measured"] for c in result.comparisons}
    assert checks["CC scaling efficiency, 4 GPUs on NVLink fabric"] > 0.95
    assert checks["CC scaling efficiency, 4 GPUs on NVL pairs"] < 0.75
    # Efficiency degrades monotonically with GPU count on CC NVL pairs.
    eff = {
        (row[0], row[1], row[2]): row[6] for row in result.rows
    }
    assert eff[("nvl-pairs", "cc", 8)] <= eff[("nvl-pairs", "cc", 4)] <= eff[
        ("nvl-pairs", "cc", 2)
    ]


def test_ext_model_load(figure_runner):
    result = figure_runner(extensions.generate_model_load)
    times = {row[0]: row[1] for row in result.rows}
    # CC turns a sub-second model load into multiple seconds; pipelined
    # encryption and TEE-IO each recover most of it.
    assert times["cc"] > 7 * times["base"]
    assert times["cc+pipelined-4t"] < 0.5 * times["cc"]
    assert times["cc+teeio"] < 1.2 * times["base"]


def test_ext_sensitivity(figure_runner):
    result = figure_runner(extensions.generate_sensitivity)
    checks = {c["metric"]: c["measured"] for c in result.comparisons}
    assert checks["copy ratios are seed-stable (max CoV, %)"] < 1.0
    # Every reported CoV is small: the headline ratios are not
    # artifacts of one lucky seed.
    for row in result.rows:
        assert row[5] < 5.0  # cov_pct


def test_ext_attestation(figure_runner):
    result = figure_runner(extensions.generate_attestation)
    rows = {row[0]: row for row in result.rows}
    # Seven SPDM messages either way; TD setup strictly slower.
    assert rows["base"][1] == rows["cc"][1] == 7
    assert rows["cc"][2] > rows["base"][2]
    # Attestation dominates time-to-first-kernel at CC bring-up.
    assert rows["cc"][2] * 1000 > rows["cc"][3]


def test_ext_fault_recovery(figure_runner):
    result = figure_runner(extensions.generate_fault_recovery)
    checks = {c["metric"]: c["measured"] for c in result.comparisons}
    # Zero-overhead guarantee: an empty plan changes nothing at all.
    assert checks["rate-0 span / no-plan span (zero-overhead guarantee)"] == 1.0
    rows = {row[0]: row for row in result.rows}
    assert rows[0.0][1] == 0 and rows[0.0][3] == 0  # no injections, no recovery
    # Injected faults and recovery time are monotone in the rate, and at
    # the top rate recovery is a visible share of the run.
    rates = sorted(rows)
    injected = [rows[r][1] for r in rates]
    recovery = [rows[r][3] for r in rates]
    assert all(b >= a for a, b in zip(injected, injected[1:]))
    assert all(b >= a for a, b in zip(recovery, recovery[1:]))
    assert rows[rates[-1]][4] > 1.0  # recovery_pct at the top rate
    # Transparent recovery: the end-to-end span grows with the rate but
    # every run still completes (no fatal faults surfaced).
    spans = [rows[r][5] for r in rates]
    assert all(b >= a for a, b in zip(spans, spans[1:]))
