"""Fig. 13: CNN training under CC with batch-size and quantization."""

from conftest import assert_comparisons

from repro.figures import fig13_cnn


def test_fig13(figure_runner):
    result = figure_runner(fig13_cnn.generate)
    # Means within 40 %, extremes within 65 % (max-over-models values
    # are the noisiest paper numbers; see EXPERIMENTS.md).
    assert_comparisons(result, rel_tol=0.40, skip_substrings=("max",))
    assert_comparisons(result, rel_tol=0.65)
    # Structural checks: CC always slower at fp32; batch 1024 shrinks
    # the relative gap for heavy models.
    rows = {(r[0], r[1], r[2], r[3]): r for r in result.rows}
    for model in ("vgg16", "attention92", "inceptionv4"):
        thr_base = rows[(model, 64, "fp32", "base")][4]
        thr_cc = rows[(model, 64, "fp32", "cc")][4]
        assert thr_cc < thr_base
