"""Table I: simulated system setup."""

from repro.figures import table1_config


def test_table1(figure_runner):
    result = figure_runner(table1_config.generate)
    components = {row[0] for row in result.rows}
    assert {"CPU", "GPU", "PCIe", "TDX"} <= components
