"""Fig. 5: per-app copy times under Base vs CC."""

from conftest import assert_comparisons

from repro.figures import fig05_copytime


def test_fig05(figure_runner):
    result = figure_runner(fig05_copytime.generate)
    # Mean within 25 %, extremes within 35 % of the paper's numbers.
    assert_comparisons(result, rel_tol=0.25, skip_substrings=("max", "min"))
    assert_comparisons(result, rel_tol=0.35)
    # Every app slows down under CC.
    slowdowns = [row[5] for row in result.rows if row[1] == "cc/base"]
    assert all(s > 1.0 for s in slowdowns)
