"""Ablations of the simulator's design choices (DESIGN.md Sec. 5).

Each ablation flips one mechanism and checks the direction of the
effect, substantiating that the modeled mechanism — not a tuned
constant — produces the paper-shaped result.
"""

import dataclasses

from repro import units
from repro.config import CopyKind, MemoryKind, SystemConfig
from repro.core import kernel_metrics, launch_metrics
from repro.cuda import run_app
from repro.cuda.transfers import achieved_bandwidth_gbps, plan_copy
from repro.sim import Simulator
from repro.tdx import GuestContext
from repro.workloads import CATALOG


def _cc_bandwidth(config, size=256 * units.MiB):
    guest = GuestContext(Simulator(), config)
    plan = plan_copy(config, guest, CopyKind.H2D, size, MemoryKind.PINNED, cold=False)
    return achieved_bandwidth_gbps(plan, size)


def test_ablation_crypto_algorithm_sets_transfer_ceiling(benchmark):
    """Swapping AES-GCM for faster (weaker) ciphers raises CC bandwidth."""

    def run():
        out = {}
        for cipher in ("aes-128-gcm", "aes-128-ctr", "ghash"):
            config = SystemConfig.confidential()
            config = config.replace(
                tdx=dataclasses.replace(config.tdx, transfer_cipher=cipher)
            )
            out[cipher] = _cc_bandwidth(config)
        return out

    bw = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nCC H2D bandwidth by cipher: {bw}")
    assert bw["aes-128-gcm"] < bw["aes-128-ctr"] < bw["ghash"]


def test_ablation_crypto_threads_scale_bandwidth(benchmark):
    """Multi-threaded encryption (the PipeLLM-style optimization the
    paper discusses in Sec. VIII) lifts the CC transfer ceiling."""

    def run():
        out = {}
        for threads in (1, 2, 4):
            config = SystemConfig.confidential()
            config = config.replace(
                tdx=dataclasses.replace(config.tdx, crypto_threads=threads)
            )
            out[threads] = _cc_bandwidth(config)
        return out

    bw = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nCC H2D bandwidth by crypto threads: {bw}")
    assert bw[1] < bw[2] < bw[4]


def test_ablation_staging_chunk_size(benchmark):
    """Bigger staging chunks amortize bounce bookkeeping."""

    def run():
        out = {}
        for chunk in (256 * units.KiB, units.MiB, 4 * units.MiB):
            config = SystemConfig.confidential()
            config = config.replace(
                pcie=dataclasses.replace(config.pcie, staging_chunk_bytes=chunk)
            )
            out[chunk] = _cc_bandwidth(config)
        return out

    bw = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nCC H2D bandwidth by staging chunk: {bw}")
    values = [bw[k] for k in sorted(bw)]
    assert values[0] < values[-1]


def test_ablation_hypercall_cost_drives_klo(benchmark):
    """Halving tdx_hypercall cost shrinks the CC KLO/KQT penalty."""

    def run():
        def klo_ratio(cc_config):
            info = CATALOG["dwt2d"]
            tb, _ = run_app(info.app(False), SystemConfig.base())
            tc, _ = run_app(info.app(False), cc_config)
            return (
                launch_metrics(tc).klo_stats().mean
                / launch_metrics(tb).klo_stats().mean
            )

        normal = SystemConfig.confidential()
        cheap_tdx = normal.replace(
            tdx=dataclasses.replace(
                normal.tdx,
                td_hypercall_ns=normal.tdx.hypercall_ns,
                page_convert_ns=normal.tdx.page_convert_ns // 4,
            )
        )
        return klo_ratio(normal), klo_ratio(cheap_tdx)

    normal, cheap = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\ndwt2d KLO ratio: normal TDX {normal:.2f}x, cheap TDX {cheap:.2f}x")
    assert cheap < normal


def test_ablation_launch_queue_depth_drives_lqt(benchmark):
    """A shallower launch queue starts LQT backpressure earlier in a
    launch storm: with kernels slower than the issue rate, every launch
    past the credit limit waits for a completion, so total LQT falls as
    the queue deepens."""
    from repro.workloads.microbench import fusion_sweep_app

    launches = 300
    ket_total = launches * units.us(12)  # 12 us kernels > issue rate

    def run():
        out = {}
        for depth in (8, 64, 1024):
            config = SystemConfig.confidential()
            config = config.replace(
                launch=dataclasses.replace(config.launch, launch_queue_depth=depth)
            )
            trace, _ = run_app(
                fusion_sweep_app, config,
                num_launches=launches, total_ket_ns=ket_total,
            )
            out[depth] = launch_metrics(trace).total_lqt_ns
        return out

    lqt = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nlaunch-storm total LQT by queue depth: {lqt}")
    assert lqt[8] > lqt[64] > lqt[1024]


def test_ablation_uvm_prefetch_and_chunk(benchmark):
    """Disabling prefetch slows base UVM; enlarging the CC migration
    chunk recovers encrypted-paging throughput."""

    def run():
        def uvm_ket(config, uvm_overrides):
            config = config.replace(
                uvm=dataclasses.replace(config.uvm, **uvm_overrides)
            )
            trace, _ = run_app(CATALOG["2dconv"].app(True), config)
            return kernel_metrics(trace).ket_stats().mean

        base_pref = uvm_ket(SystemConfig.base(), {})
        base_nopref = uvm_ket(SystemConfig.base(), {"prefetch_enabled": False})
        cc_small = uvm_ket(SystemConfig.confidential(), {})
        cc_big = uvm_ket(
            SystemConfig.confidential(),
            {"cc_migration_chunk_bytes": 2 * units.MiB},
        )
        return base_pref, base_nopref, cc_small, cc_big

    base_pref, base_nopref, cc_small, cc_big = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(
        f"\n2dconv UVM KET (us): base prefetch={units.to_us(base_pref):.0f} "
        f"no-prefetch={units.to_us(base_nopref):.0f} "
        f"cc 32KiB-chunk={units.to_us(cc_small):.0f} cc 2MiB-chunk={units.to_us(cc_big):.0f}"
    )
    assert base_nopref > base_pref
    assert cc_big < cc_small
