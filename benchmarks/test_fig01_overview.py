"""Fig. 1: end-to-end overview breakdown under CC settings."""

from repro.figures import fig01_overview


def test_fig01(figure_runner):
    result = figure_runner(fig01_overview.generate)
    ratios = {c["metric"]: c["measured"] for c in result.comparisons}
    assert ratios["cc-on / cc-off end-to-end (qualitative: > 1)"] > 1.2
    assert ratios["cc-on-uvm / cc-on end-to-end (qualitative: >> 1)"] > 2.0
