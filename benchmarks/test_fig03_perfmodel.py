"""Fig. 3: the performance model, validated against simulated runs."""

from repro.figures import fig03_model


def test_fig03(figure_runner):
    result = figure_runner(fig03_model.generate)
    max_error = result.comparisons[0]["measured"]
    assert max_error < 0.06, f"model prediction error too high: {max_error:.3f}"
    # Alpha is zero-ish for these non-streamed apps; betas bounded.
    for row in result.rows:
        assert 0.0 <= row[6] <= 1.0
        assert 0.0 <= row[7] <= 1.0
