"""Fig. 9: KET normalized across base/CC x UVM/non-UVM."""

from conftest import assert_comparisons

from repro.figures import fig09_ket


def test_fig09(figure_runner):
    result = figure_runner(fig09_ket.generate)
    # Tight check on the non-UVM CC increase (paper: +0.48 %).
    assert_comparisons(result, rel_tol=0.05, skip_substrings=("UVM",))
    ratios = {c["metric"]: c["measured"] for c in result.comparisons}
    # UVM non-CC mean within 35 %; UVM-CC values are order-of-magnitude
    # (the paper's 2dconv datapoint thrashes, ours does not).
    paper_uvm = 5.29
    assert abs(ratios["UVM non-CC mean slowdown"] - paper_uvm) / paper_uvm < 0.35
    assert ratios["UVM CC mean slowdown"] > 50
    assert ratios["UVM CC max slowdown (2dconv; paper value is pathological thrash)"] > 1000
    assert ratios["UVM CC min slowdown"] < 10
    # Per-app: uvm_cc dominates uvm_base dominates cc for every row.
    for row in result.rows:
        if row[0] == "MEAN":
            continue
        _app, _base, cc, uvm_base, uvm_cc = row
        assert uvm_cc > uvm_base > cc
