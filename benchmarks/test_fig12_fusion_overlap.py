"""Fig. 12: microbenchmarks — launch sequence, fusion, overlap."""

from repro.figures import fig12_micro


def test_fig12a(figure_runner):
    result = figure_runner(fig12_micro.generate_12a)
    checks = {c["metric"]: c["measured"] for c in result.comparisons}
    assert checks["first-launch spike over steady (base)"] > 5
    assert 1.05 < checks["CC steady-state KLO ratio"] < 1.6
    # CC curve sits above base at matching steady indices.
    klo = {(row[0], row[1]): row[2] for row in result.rows}
    steady_indices = range(10, 90)
    cc_higher = sum(
        1 for i in steady_indices if klo[("cc", i)] > klo[("base", i)]
    )
    assert cc_higher > 0.8 * len(list(steady_indices))


def test_fig12b(figure_runner):
    result = figure_runner(fig12_micro.generate_12b)
    checks = {c["metric"]: c["measured"] for c in result.comparisons}
    # Opposite trends: mean KLO falls with launches, total KLO rises.
    assert checks["mean KLO at 1 launch / at max launches (CC)"] > 3
    assert checks["total KLO grows with launches (CC, max/min)"] > 3


def test_fig12c(figure_runner):
    result = figure_runner(fig12_micro.generate_12c)
    checks = {c["metric"]: c["measured"] for c in result.comparisons}
    # Observation 8: longer KET (higher compute-to-IO) improves CC
    # overlap; CC overlaps worse than base for short kernels.
    assert checks["CC overlap speedup, 64 streams, KET 100ms vs 1ms (ratio > 1)"] > 1.5
    assert checks["base vs CC overlap speedup at 64 streams, KET 1ms (base higher)"] > 1.2
