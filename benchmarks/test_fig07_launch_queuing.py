"""Fig. 7: KLO / LQT / KQT ratios under CC."""

from conftest import assert_comparisons

from repro.figures import fig07_launch


def test_fig07(figure_runner):
    result = figure_runner(fig07_launch.generate)
    assert_comparisons(result, rel_tol=0.20)
    by_app = {row[0]: row for row in result.rows}
    # dwt2d is the KLO outlier; sc's LQT rises; some apps may show
    # LQT < 1 (the paper's 3mm/atax/bicg/corr fluctuation note).
    assert by_app["dwt2d"][2] == max(
        row[2] for row in result.rows if row[0] != "MEAN"
    )
    assert by_app["sc"][3] > 1.5
