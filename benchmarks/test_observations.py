"""The paper's nine Observations, each re-derived from the simulator."""

import pytest

from repro.figures.observations import ALL_OBSERVATIONS


@pytest.mark.parametrize("number", sorted(ALL_OBSERVATIONS))
def test_observation(benchmark, number):
    result = benchmark.pedantic(
        ALL_OBSERVATIONS[number], rounds=1, iterations=1
    )
    print(f"\nObservation {number}: {result.claim}\n  -> {result.detail}")
    assert result.holds, f"Observation {number} failed: {result.detail}"
