"""Fig. 11: CDFs of KLO and KET, base vs CC."""

from repro.figures import fig11_cdf


def test_fig11(figure_runner):
    result = figure_runner(fig11_cdf.generate)
    ratios = {c["metric"]: c["measured"] for c in result.comparisons}
    # KLO curve shifts right under CC; KET essentially unchanged.
    assert ratios["KLO CDF shifts right under CC (mean ratio > 1)"] > 1.15
    ket_ratio = ratios["KET distribution ~unchanged under CC (mean ratio)"]
    assert abs(ket_ratio - 1.0048) < 0.01
    # Median KLO must also shift (not just first-launch outliers).
    medians = {
        (row[0], row[1]): row[3] for row in result.rows if row[2] == 50
    }
    assert medians[("klo", "cc")] > medians[("klo", "base")]
