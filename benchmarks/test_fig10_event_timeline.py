"""Fig. 10: event distributions for four representative apps."""

from repro.figures import fig10_events


def test_fig10(figure_runner):
    result = figure_runner(fig10_events.generate)
    checks = {c["metric"]: c["measured"] for c in result.comparisons}
    assert checks["KLR panel A >> panel C"] == 1.0
    assert checks["KLR panel B > panel D"] == 1.0
    # Paper launch counts for panels C (sc) and D (3dconv).
    counts = {
        (row[0], row[2], row[3]): row[4] for row in result.rows
    }
    assert counts[("C", "base", "launch")] == 1611
    assert counts[("D", "base", "launch")] == 254
