"""Fig. 6: allocation/deallocation costs under Base vs CC."""

from conftest import assert_comparisons

from repro.figures import fig06_alloc


def test_fig06(figure_runner):
    result = figure_runner(fig06_alloc.generate)
    assert_comparisons(result, rel_tol=0.20)
    # Deallocation is hit harder than allocation under CC (Sec. VI-A).
    ratios = {c["metric"]: c["measured"] for c in result.comparisons}
    assert ratios["cudaFree slowdown"] > ratios["cudaMalloc slowdown"]
