"""Fig. 4b: single-core crypto throughput."""

from conftest import assert_comparisons

from repro.figures import fig04_bandwidth


def test_fig04b(figure_runner):
    result = figure_runner(fig04_bandwidth.generate_4b)
    assert_comparisons(result, rel_tol=0.02)
    # GHASH is the fastest but offers no confidentiality (Obs. 2).
    emr = [row for row in result.rows if row[0].startswith("intel")]
    fastest = max(emr, key=lambda row: row[3])
    assert fastest[1] == "ghash"
    assert fastest[4] == "no"
