"""Shared helpers for the figure-reproduction benches.

Each bench generates one paper figure through pytest-benchmark (a
single measured round — the interesting output is the figure data, not
the generator's wall time), saves JSON + text into ``results/``,
prints the table, and asserts the paper-vs-measured comparisons stay
within per-figure tolerances.

Generation is routed through the cache-aware experiment harness
(:mod:`repro.exec`): a bench whose figure, config, and calibration are
unchanged since the last run replays its cached payload instead of
re-simulating, so ``pytest benchmarks/`` iterates at cache speed after
the first full sweep.  Set ``REPRO_BENCH_NO_CACHE=1`` to force every
bench to re-simulate; calls that pass custom generator arguments
bypass the cache automatically (their cell key wouldn't describe the
payload).
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

RESULTS_DIR = os.environ.get(
    "REPRO_RESULTS_DIR",
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "results"),
)


def _cache_enabled() -> bool:
    return not os.environ.get("REPRO_BENCH_NO_CACHE")


@pytest.fixture
def figure_runner(benchmark):
    """Run a figure generator once under pytest-benchmark, persist and
    display the result, and return it."""

    def run(generator, *args, **kwargs):
        from repro.exec import runner as exec_runner

        cell = None
        if not args and not kwargs and _cache_enabled():
            cell = exec_runner.cell_for_generator(generator)
        if cell is None:
            # No grid cell covers this exact call — run it directly.
            result = benchmark.pedantic(
                generator, args=args, kwargs=kwargs, rounds=1, iterations=1
            )
            path = result.save(RESULTS_DIR)
        else:
            report = benchmark.pedantic(
                exec_runner.run_grid,
                args=([cell],),
                kwargs={"jobs": 1, "results_dir": RESULTS_DIR},
                rounds=1,
                iterations=1,
            )
            outcome = report.outcomes[0]
            assert outcome.ok, (
                f"{cell} failed: {outcome.error}\n{outcome.traceback}"
            )
            path = outcome.json_path
            with open(path) as handle:
                result = exec_runner.payload_to_result(handle.read())
            if outcome.status == "hit":
                print(f"\n[cache hit] {cell}")
            if outcome.sim_ns:
                # Final simulator clock vs wall: the harness-level
                # throughput statistic the perf baseline records.
                rate = outcome.sim_ns / (outcome.wall_ns / 1e9) if outcome.wall_ns else 0.0
                print(
                    f"\n[sim] {cell}: {outcome.sim_ns / 1e6:.1f} ms simulated "
                    f"in {outcome.wall_ns / 1e6:.1f} ms wall "
                    f"({rate / 1e9:.1f} sim-s/wall-s)"
                )
        print()
        print(result.to_text())
        print(f"[saved] {path}")
        return result

    return run


def assert_comparisons(result, rel_tol, skip_substrings=()):
    """Every paper-vs-measured entry within ``rel_tol`` relative error,
    except metrics whose name contains a skip substring (qualitative or
    order-of-magnitude entries asserted separately)."""
    failures = []
    for item in result.comparisons:
        if any(token in item["metric"] for token in skip_substrings):
            continue
        paper, measured = item["paper"], item["measured"]
        if paper == 0:
            continue
        error = abs(measured - paper) / abs(paper)
        if error > rel_tol:
            failures.append(
                f"{item['metric']}: paper={paper} measured={measured:.4g} "
                f"(err {100 * error:.1f}% > {100 * rel_tol:.0f}%)"
            )
    assert not failures, "calibration drift:\n" + "\n".join(failures)
