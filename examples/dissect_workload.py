#!/usr/bin/env python3
"""Deep-dive dissection of one workload, Nsight-style.

Runs an app under both modes and emits everything the paper's
methodology produces: per-category copy times, launch/queue/execution
metrics, the Sec.-V model decomposition, per-event CDF percentiles,
and a Chrome-trace JSON you can open in chrome://tracing or Perfetto.

Usage:
    python examples/dissect_workload.py [app-name] [--uvm] [--trace out.json]
"""

import argparse

import numpy as np

from repro import SystemConfig, decompose, run_app, units
from repro.core import copy_time_by_kind, kernel_metrics, launch_metrics, mgmt_time_by_api
from repro.workloads import CATALOG


def dissect(name: str, uvm: bool, trace_path: str) -> None:
    info = CATALOG[name]
    print(f"app: {name} ({info.suite}){' [UVM]' if uvm else ''}\n")
    for label, config in (
        ("CC-off", SystemConfig.base()),
        ("CC-on", SystemConfig.confidential()),
    ):
        trace, _ = run_app(info.app(uvm), config, label=f"{name}|{label}")
        launches = launch_metrics(trace)
        kernels = kernel_metrics(trace)
        print(f"=== {label} (span {units.to_ms(trace.span_ns()):.3f} ms) ===")
        print(f"  launches: {launches.count}  "
              f"KLO mean {units.to_us(launches.klo_stats().mean):.2f} us  "
              f"LQT mean {units.to_us(launches.lqt_stats().mean):.2f} us")
        print(f"  kernels:  {kernels.count}  "
              f"KET mean {units.to_us(kernels.ket_stats().mean):.2f} us  "
              f"KQT mean {units.to_us(kernels.kqt_stats().mean):.2f} us")
        klos = [e.duration_ns for e in trace.launches()]
        if klos:
            p50, p95 = np.percentile(klos, [50, 95])
            print(f"  KLO p50/p95: {units.to_us(p50):.2f} / {units.to_us(p95):.2f} us")
        print("  copies:")
        for kind, total in copy_time_by_kind(trace).items():
            if total:
                print(f"    {kind.value}: {units.to_ms(total):.3f} ms")
        print("  memory management:")
        for api, total in sorted(mgmt_time_by_api(trace).items()):
            print(f"    {api}: {units.to_us(total):.1f} us")
        print("  model decomposition:")
        print(decompose(trace).summary())
        print()
        if label == "CC-on" and trace_path:
            with open(trace_path, "w") as handle:
                handle.write(trace.to_chrome_trace())
            print(f"chrome trace written to {trace_path} "
                  f"(open in chrome://tracing)\n")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("app", nargs="?", default="3dconv",
                        choices=sorted(CATALOG))
    parser.add_argument("--uvm", action="store_true",
                        help="run the UVM (cudaMallocManaged) variant")
    parser.add_argument("--trace", default="",
                        help="write a Chrome-trace JSON for the CC run")
    args = parser.parse_args()
    dissect(args.app, args.uvm, args.trace)


if __name__ == "__main__":
    main()
