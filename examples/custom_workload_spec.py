#!/usr/bin/env python3
"""Model *your own* GPU application with the declarative workload DSL.

Writes a JSON workload spec (an iterative solver: upload, 40 solver
iterations of 3 kernels with a small per-iteration readback, download),
loads it back, and dissects it under CC-off/CC-on — the workflow a
downstream user follows to estimate their app's confidential-computing
tax without writing simulator code.

Usage:
    python examples/custom_workload_spec.py [spec.json]
"""

import sys

from repro import SystemConfig, decompose, run_app, units
from repro.workloads import WorkloadSpec

MiB = units.MiB

SOLVER_SPEC = {
    "name": "iterative-solver",
    "ops": [
        {"op": "malloc", "name": "matrix", "bytes": 64 * MiB},
        {"op": "malloc", "name": "state", "bytes": 8 * MiB},
        {"op": "host_alloc", "name": "h_matrix", "bytes": 64 * MiB},
        {"op": "malloc_host", "name": "h_residual", "bytes": 4096},
        {"op": "memcpy", "dst": "matrix", "src": "h_matrix"},
        {
            "op": "loop",
            "count": 40,
            "body": [
                {"op": "launch", "kernel": "spmv",
                 "flops": 4e8, "mem_bytes": 64 * MiB},
                {"op": "launch", "kernel": "axpy",
                 "flops": 4e6, "mem_bytes": 24 * MiB},
                {"op": "launch", "kernel": "dot",
                 "flops": 4e6, "mem_bytes": 16 * MiB},
                {"op": "memcpy", "dst": "h_residual", "src": "state",
                 "bytes": 4096},
                {"op": "cpu", "us": 3.0},
            ],
        },
        {"op": "memcpy", "dst": "h_matrix", "src": "state",
         "bytes": 8 * MiB},
    ],
}


def main() -> None:
    spec = WorkloadSpec(SOLVER_SPEC["name"], SOLVER_SPEC["ops"])
    if len(sys.argv) > 1:
        with open(sys.argv[1], "w") as handle:
            handle.write(spec.to_json())
        spec = WorkloadSpec.load(sys.argv[1])
        print(f"spec round-tripped through {sys.argv[1]}")
    print(f"workload: {spec.name} ({spec.total_launches()} launches)\n")
    spans = {}
    for label, config in (
        ("CC-off", SystemConfig.base()),
        ("CC-on", SystemConfig.confidential()),
    ):
        trace, _ = run_app(spec.app(), config, label=label)
        spans[label] = trace.span_ns()
        print(f"--- {label} ---")
        print(decompose(trace).summary())
        print()
    print(f"estimated CC tax for this workload: "
          f"{spans['CC-on'] / spans['CC-off']:.2f}x")


if __name__ == "__main__":
    main()
