#!/usr/bin/env python3
"""Fault injection and recovery demo.

Runs the same workload three times — fault-free, under a transient
fault plan (recovered transparently: same result, more time), and
under a persistent fault (surfaced as a typed FatalCudaFault with all
resources released) — and prints the per-site recovery ledger.

Usage:
    python examples/fault_injection_demo.py
"""

import os

from repro import SystemConfig, units
from repro.cuda import FatalCudaFault, Machine
from repro.faults import GCM_TAG, FaultPlan, SiteFaults
from repro.workloads import CATALOG

PLAN_PATH = os.path.join(os.path.dirname(__file__), "fault_plan.json")


def run(label: str, config: SystemConfig) -> Machine:
    machine = Machine(config, label=label)
    machine.run(CATALOG["srad"].app(False))
    return machine


def main() -> None:
    # 1. Fault-free baseline.
    clean = run("clean", SystemConfig.confidential())
    print(f"fault-free: span {units.to_ms(clean.trace.span_ns()):.3f} ms")

    # 2. Transient faults from the example plan: recovered in-stack.
    plan = FaultPlan.load(PLAN_PATH)
    faulted = run("faulted", SystemConfig.confidential().replace(faults=plan))
    ledger = faulted.guest.faults
    print(f"under plan: span {units.to_ms(faulted.trace.span_ns()):.3f} ms, "
          f"{ledger.total_injected} faults injected, recovery "
          f"{units.to_ms(faulted.trace.recovery_ns()):.3f} ms")
    for site, visits, injected, retried, fatal, rec_ns in ledger.report_rows():
        print(f"  {site:<18} visits {visits:>4}  injected {injected:>3}  "
              f"retried {retried:>3}  recovery {units.to_ms(rec_ns):8.3f} ms")

    # 3. A persistent fault exhausts the retry budget and is fatal —
    #    but typed, diagnosable, and leak-free.
    persistent = SystemConfig.confidential().replace(
        faults=FaultPlan.from_mapping(
            {GCM_TAG: SiteFaults(schedule=tuple(range(8)))}
        )
    )
    machine = Machine(persistent, label="persistent")
    try:
        machine.run(CATALOG["srad"].app(False))
    except FatalCudaFault as exc:
        print(f"persistent fault: {type(exc).__name__}: {exc}")
        print(f"  bounce pool in use after failure: "
              f"{machine.guest.bounce.used_bytes} bytes (must be 0)")
        assert machine.guest.bounce.used_bytes == 0


if __name__ == "__main__":
    main()
