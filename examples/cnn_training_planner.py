#!/usr/bin/env python3
"""CNN training under confidential computing: a deployment planner.

For each of the paper's six CIFAR-100 models, sweeps batch size and
precision and reports the configuration that minimizes CC training
time — reproducing the Sec. VII-B guidance (large batches amortize the
fixed CC tax; FP16 quantization also cuts the transfer tax).

Usage:
    python examples/cnn_training_planner.py [model ...]
"""

import sys

from repro import SystemConfig
from repro.dnn import MODEL_NAMES, get, train

BATCHES = (64, 256, 1024)
PRECISIONS = ("fp32", "amp", "fp16")


def main() -> None:
    names = sys.argv[1:] or MODEL_NAMES
    cc = SystemConfig.confidential()
    base = SystemConfig.base()
    print(f"{'model':<13}{'batch':>6}{'prec':>6}{'tput img/s':>12}"
          f"{'cc drop %':>10}{'200-epoch hrs':>15}")
    for name in names:
        model = get(name)
        best = None
        for batch in BATCHES:
            for precision in PRECISIONS:
                result = train(model, batch, precision, cc)
                reference = train(model, batch, precision, base)
                drop = 100 * (
                    1 - result.throughput_img_per_sec
                    / reference.throughput_img_per_sec
                )
                hours = result.training_time_sec(200) / 3600
                print(f"{name:<13}{batch:>6}{precision:>6}"
                      f"{result.throughput_img_per_sec:>12.0f}"
                      f"{drop:>10.1f}{hours:>15.2f}")
                if best is None or hours < best[3]:
                    best = (batch, precision, result.throughput_img_per_sec, hours)
        batch, precision, tput, hours = best
        print(f"{'-> best':<13}{batch:>6}{precision:>6}{tput:>12.0f}"
              f"{'':>10}{hours:>15.2f}\n")


if __name__ == "__main__":
    main()
