#!/usr/bin/env python3
"""End-to-end confidential data path demo.

Pushes a real plaintext payload through the CC transfer pipeline
(TD-private memory -> software AES-GCM -> bounce buffer -> GPU) and
shows that (a) the data round-trips intact, (b) what the *untrusted
hypervisor* can observe in the bounce buffer is ciphertext, and (c) a
tampered bounce buffer is detected by the AES-GCM tag — the integrity
guarantee of the paper's threat model (Sec. III).

Usage:
    python examples/secure_transfer_demo.py
"""

from repro import SystemConfig, units
from repro.crypto import AESGCM, AuthenticationError
from repro.cuda import Machine

PAYLOAD = b"patient-record-0042: classified model weights \x00\x01\x02\x03"


def roundtrip(rt):
    dev = yield from rt.malloc(4096)
    host_in = yield from rt.malloc_host(4096)
    host_out = yield from rt.malloc_host(4096)
    host_in.write(PAYLOAD)
    yield from rt.memcpy(dev, host_in)
    yield from rt.memcpy(host_out, dev)
    return host_out.read()


def main() -> None:
    machine = Machine(SystemConfig.confidential(), label="secure-transfer")
    result = machine.run(roundtrip)
    assert result[: len(PAYLOAD)] == PAYLOAD
    print(f"plaintext round-tripped intact through the CC data path "
          f"({len(PAYLOAD)} bytes)")
    print(f"  hypercalls taken: {machine.guest.hypercall_count}")
    print(f"  bounce pool peak usage: {machine.guest.bounce.peak_usage} bytes")

    # What the untrusted side would see: encrypt the same payload the
    # way the runtime does and compare against the plaintext.
    gcm = AESGCM(b"hcc-session-key!")
    ciphertext, tag = gcm.encrypt(b"\x00" * 11 + b"\x01", PAYLOAD)
    assert ciphertext != PAYLOAD
    overlap = sum(1 for a, b in zip(ciphertext, PAYLOAD) if a == b)
    print(f"\nbounce-buffer view is ciphertext: "
          f"{overlap}/{len(PAYLOAD)} bytes coincide with plaintext (chance level)")

    # Integrity: flip one bounce-buffer byte and watch GCM reject it.
    tampered = bytes([ciphertext[0] ^ 0x80]) + ciphertext[1:]
    try:
        gcm.decrypt(b"\x00" * 11 + b"\x01", tampered, tag)
        raise SystemExit("tampering was NOT detected — bug!")
    except AuthenticationError:
        print("tampered transfer rejected by AES-GCM tag (integrity holds)")

    print(f"\nsimulated wall clock: {units.to_us(machine.elapsed_ns):.1f} us")


if __name__ == "__main__":
    main()
