#!/usr/bin/env python3
"""Secure multi-GPU collectives: the metadata-management tradeoff.

Compares ring all-reduce across GPU counts and message sizes under
plaintext links, naive per-flit counter metadata, and dynamic batched
metadata (the direction the paper's Sec. VIII points at via Na et al.,
HPCA'24) — and demonstrates the functional link security: encrypted
gradients, replay rejection, tamper detection.

Usage:
    python examples/secure_multigpu.py
"""

from repro import units
from repro.multigpu import (
    AuthFailure,
    LinkSecurity,
    MultiGPUNode,
    ReplayError,
    ring_all_reduce,
)


def main() -> None:
    print("== ring all-reduce under link-security policies ==")
    print(f"{'gpus':>5}{'size':>10}{'policy':>10}{'time ms':>10}{'GB/s':>8}")
    for num_gpus in (2, 4, 8):
        node = MultiGPUNode(num_gpus=num_gpus)
        for size in (64 * units.MiB, units.GB):
            for security in LinkSecurity:
                result = ring_all_reduce(node, size, security)
                print(f"{num_gpus:>5}{size // units.MiB:>9}M"
                      f"{security.value:>10}"
                      f"{units.to_ms(result.time_ns):>10.3f}"
                      f"{result.algo_bandwidth_gbps:>8.1f}")
        print()

    print("== functional secure channel (GPU0 -> GPU1) ==")
    node = MultiGPUNode(num_gpus=2)
    tx = node.channel(0, 1)
    rx = MultiGPUNode(num_gpus=2).channel(0, 1)  # same derived key
    gradient = b"\x01\x02\x03\x04" * 8
    message = tx.seal(gradient)
    print(f"sealed {len(gradient)} plaintext bytes -> counter={message[0]}, "
          f"ciphertext differs: {message[1] != gradient}")
    assert rx.open(*message) == gradient
    print("receiver decrypted and authenticated the gradient")
    try:
        rx.open(*message)
    except ReplayError as exc:
        print(f"replay rejected: {exc}")
    counter, ciphertext, mac = tx.seal(b"second update")
    tampered = bytes([ciphertext[0] ^ 0xFF]) + ciphertext[1:]
    try:
        rx.open(counter, tampered, mac)
    except AuthFailure as exc:
        print(f"tampering rejected: {exc}")


if __name__ == "__main__":
    main()
