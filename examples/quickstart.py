#!/usr/bin/env python3
"""Quickstart: run one GPU application with confidential computing off
and on, and dissect where the overhead comes from using the paper's
performance model (Sec. V).

Usage:
    python examples/quickstart.py [app-name]

App names come from the built-in catalogue (default: sc, the paper's
1611-launch streamcluster).  Try `2dconv` for the copy-dominated worst
case or `gb_bfs` for a compute-dominated app that barely notices CC.
"""

import sys

from repro import SystemConfig, breakdown, decompose, run_app, units
from repro.core import kernel_to_launch_ratio
from repro.workloads import CATALOG


def main() -> None:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "sc"
    info = CATALOG[app_name]
    print(f"app: {info.name} ({info.suite}) — {info.description}\n")

    traces = {}
    for label, config in (
        ("CC-off", SystemConfig.base()),
        ("CC-on", SystemConfig.confidential()),
    ):
        trace, _ = run_app(info.app(), config, label=label)
        traces[label] = trace
        model = decompose(trace)
        print(f"--- {label} ---")
        print(model.summary())
        print(f"  {'KLR':<26}{kernel_to_launch_ratio(trace):12.2f}")
        print()

    ratio = traces["CC-on"].span_ns() / traces["CC-off"].span_ns()
    print(f"end-to-end CC slowdown: {ratio:.2f}x\n")

    print("wall-clock attribution (CC-on):")
    result = breakdown(traces["CC-on"])
    for category, time_ns, share in result.rows():
        if time_ns:
            print(f"  {category:<14}{units.to_ms(time_ns):10.3f} ms  {share * 100:5.1f}%")


if __name__ == "__main__":
    main()
