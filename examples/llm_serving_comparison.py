#!/usr/bin/env python3
"""Llama-3-8B serving under confidential computing (Fig. 14 scenario).

Compares HF-style and vLLM-style backends across quantization and CC
modes, and prints paged-KV-cache utilization stats for the vLLM
engine — the workload the paper uses to show that serving-stack
choices dwarf the CC tax itself.

Usage:
    python examples/llm_serving_comparison.py [batch ...]
"""

import sys

from repro import SystemConfig, units
from repro.llm import (
    AWQ,
    BF16,
    HFBackend,
    LLAMA3_8B,
    PagedKVCache,
    VLLMBackend,
    make_requests,
)


def main() -> None:
    batches = [int(arg) for arg in sys.argv[1:]] or [8, 64]
    base, cc = SystemConfig.base(), SystemConfig.confidential()
    print(f"model: {LLAMA3_8B.name} "
          f"({LLAMA3_8B.params / 1e9:.1f}B params, "
          f"{LLAMA3_8B.kv_bytes_per_token() // 1024} KiB KV/token)\n")
    for batch in batches:
        requests = make_requests(max(3 * batch, 8), seed=11)
        total_tokens = sum(r.gen_tokens for r in requests)
        print(f"== batch {batch}: {len(requests)} requests, "
              f"{total_tokens} tokens to generate ==")
        baseline = HFBackend(quant=BF16).serve(base, requests, batch)
        print(f"{'backend':<8}{'quant':<6}{'mode':<8}{'tok/s':>10}{'speedup':>9}"
              f"{'TTFT p50':>10}{'e2e p95':>10}")
        for backend_cls, quant in (
            (HFBackend, BF16),
            (VLLMBackend, BF16),
            (VLLMBackend, AWQ),
        ):
            for label, config in (("cc-off", base), ("cc-on", cc)):
                result = backend_cls(quant=quant).serve(config, requests, batch)
                print(f"{result.backend:<8}{result.quant:<6}{label:<8}"
                      f"{result.tokens_per_sec:>10.1f}"
                      f"{result.tokens_per_sec / baseline.tokens_per_sec:>9.2f}"
                      f"{result.ttft_ms(50):>9.1f}m"
                      f"{result.e2e_latency_ms(95):>9.1f}m")
        print()

    # Paged KV cache anatomy for one serving configuration.
    cache = PagedKVCache(
        24 * units.GiB, block_tokens=16,
        kv_bytes_per_token=LLAMA3_8B.kv_bytes_per_token(),
    )
    print(f"paged KV cache: {cache.num_blocks} blocks of "
          f"{cache.block_tokens} tokens "
          f"({cache.block_bytes // 1024} KiB each)")
    for seq in range(4):
        cache.admit(seq, prompt_tokens=128)
    for _ in range(64):
        for seq in range(4):
            cache.append_token(seq)
    print(f"  after 4 seqs x (128 prompt + 64 generated): "
          f"{cache.used_blocks} blocks used, {cache.free_blocks} free")
    cache.check_invariants()


if __name__ == "__main__":
    main()
