#!/usr/bin/env python3
"""Tuning kernel fusion and stream overlap for CC (Sec. VII-A).

Sweeps fusion levels for a launch-bound workload (showing that fully
fused is suboptimal — Observation 7), evaluates CUDA-graph launch
fusion for a 3dconv-style iterative app, and measures how stream count
and compute-to-IO ratio drive copy/compute overlap under CC
(Observation 8).

Usage:
    python examples/fusion_tuning.py
"""

from repro import SystemConfig, units
from repro.optim import (
    compute_to_io_ratio,
    sweep_fusion_levels,
    sweep_graph_batches,
    sweep_streams,
)


def main() -> None:
    cc = SystemConfig.confidential()

    print("== kernel fusion sweep (2 ms total KET, launch-bound) ==")
    plan = sweep_fusion_levels(cc, total_ket_ns=units.ms(2))
    for level in sorted(plan.levels):
        marker = "  <- best" if level == plan.best_level else ""
        print(f"  {level:>4} launches: {units.to_ms(plan.levels[level]):8.3f} ms{marker}")
    print(f"  fully fused is {'' if plan.best_level == 1 else 'NOT '}optimal "
          f"(Observation 7)\n")

    print("== cudaGraph launch fusion (254 iterative 30us kernels) ==")
    times = sweep_graph_batches(cc, num_launches=254, per_kernel_ns=units.us(5))
    for batch in sorted(times):
        print(f"  graph batch {batch:>4}: {units.to_ms(times[batch]):8.3f} ms")
    print()

    print("== stream overlap (512 MB copies + 10 ms kernels) ==")
    overlap = sweep_streams(cc, total_bytes=512 * units.MB, ket_ns=units.ms(10))
    for streams in sorted(overlap.alphas):
        print(f"  {streams:>3} streams: alpha = {overlap.alphas[streams]:.3f}")
    print(f"  best stream count: {overlap.best_streams} "
          f"(alpha {overlap.best_alpha:.3f})\n")

    print("== compute-to-IO ratio, base vs CC (512 MB, 50 ms KET) ==")
    for label, config in (("base", SystemConfig.base()), ("cc", cc)):
        ratio = compute_to_io_ratio(config, 512 * units.MB, units.ms(50))
        print(f"  {label:<5} compute/IO = {ratio:.2f}")
    print("  CC shrinks the ratio: the same kernel hides less transfer "
          "(Observation 8)")


if __name__ == "__main__":
    main()
